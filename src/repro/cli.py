"""Command-line interface: ``python -m repro`` / ``repro-bench``.

Subcommands regenerate the paper's artifacts and inspect the library:

* ``table1`` — Table I (run times by program and sample size)
* ``table2`` — Table II (run times by bandwidth count, both panels)
* ``fig1``   — Figure 1 (same sweep, ASCII log–log chart)
* ``shape``  — run Table I (+ optionally Table II) and verify the
  paper's shape claims
* ``select`` — one bandwidth selection on a chosen DGP
* ``trace``  — run a traced selection; print the span tree and write a
  Chrome trace-event JSON (load in chrome://tracing or Perfetto)
* ``serve``  — JSON-over-HTTP bandwidth-selection service (fingerprint
  cache, micro-batched predict, /metrics)
* ``workers`` — run a local fleet of sweep workers for
  ``select --backend distributed`` (or probe a running fleet)
* ``info``   — registered kernels, backends, devices, programs, serving
  cache status
* ``lint``   — project-aware static analysis (also ``repro-lint``)
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def _parse_sizes(text: str | None) -> tuple[int, ...] | None:
    if not text:
        return None
    return tuple(int(part) for part in text.split(",") if part.strip())


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce Rohlfs & Zahran (IPPS 2017): optimal "
        "bandwidth selection via fast grid search and a (simulated) GPU.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--sizes",
        type=str,
        default=None,
        help="comma-separated sample sizes (default: quick subset; "
        "set REPRO_BENCH_FULL=1 for the paper's full list)",
    )
    common.add_argument("--seed", type=int, default=0)
    common.add_argument(
        "--repetitions",
        type=int,
        default=1,
        help="timed repetitions per cell (paper protocol: 5)",
    )
    common.add_argument(
        "--output",
        type=str,
        default=None,
        help="directory to write CSV/JSON artifacts into",
    )

    t1 = sub.add_parser("table1", parents=[common], help="regenerate Table I")
    t1.add_argument("--k", type=int, default=50, help="bandwidth-grid size")
    t1.add_argument(
        "--programs",
        type=str,
        default="racine-hayfield,multicore-r,sequential-c,cuda-gpu",
    )

    t2 = sub.add_parser("table2", parents=[common], help="regenerate Table II")
    t2.add_argument(
        "--bandwidths",
        type=str,
        default="5,10,50,100,500,1000,2000",
        help="comma-separated bandwidth counts",
    )

    f1 = sub.add_parser("fig1", parents=[common], help="regenerate Figure 1")
    f1.add_argument("--k", type=int, default=50)

    shape = sub.add_parser(
        "shape", parents=[common], help="verify the paper's shape claims"
    )
    shape.add_argument("--k", type=int, default=50)
    shape.add_argument(
        "--with-table2", action="store_true", help="include the Table II sweep"
    )

    sel = sub.add_parser("select", help="run one bandwidth selection")
    sel.add_argument("--dgp", type=str, default="paper")
    sel.add_argument(
        "--data",
        type=str,
        default=None,
        help="CSV file of (x, y) observations; overrides --dgp/--n",
    )
    sel.add_argument("--n", type=int, default=1000)
    sel.add_argument("--k", type=int, default=50)
    sel.add_argument("--kernel", type=str, default="epanechnikov")
    sel.add_argument(
        "--method",
        type=str,
        default="grid",
        choices=["grid", "bagged", "numeric", "rot"],
    )
    sel.add_argument(
        "--backend",
        type=str,
        default="numpy",
        choices=["numpy", "python", "multicore", "compiled", "blocked", "blocked-shm", "blocked-compiled", "gpusim", "gpusim-tiled", "distributed"],
    )
    sel.add_argument(
        "--workers",
        type=str,
        default=None,
        metavar="N|HOST:PORT,...",
        help="fleet for --backend distributed: a worker count to spawn "
        "locally, or comma-separated endpoints of a running fleet "
        "(default: $REPRO_WORKERS, else lossless local degradation)",
    )
    sel.add_argument("--seed", type=int, default=0)
    sel.add_argument(
        "--subsamples",
        type=int,
        default=None,
        metavar="R",
        help="--method bagged: number of seeded subsamples "
        "(default: 20, or 1 when the subsample covers the sample)",
    )
    sel.add_argument(
        "--subsample-size",
        type=int,
        default=None,
        metavar="M",
        help="--method bagged: observations per subsample "
        "(default: min(ceil(n^0.7), 5000))",
    )
    sel.add_argument(
        "--root-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="--method bagged: root seed all subsample draws derive from",
    )
    sel.add_argument(
        "--mem-budget",
        type=str,
        default=None,
        metavar="BYTES",
        help="working-set byte budget for the blocked/blocked-shm "
        "backends, e.g. '2GB' or '512MiB' (default: $REPRO_MEM_BUDGET, "
        "then 1GiB)",
    )
    sel.add_argument(
        "--resilient",
        action="store_true",
        help="run on the resilient execution engine (retry, checkpoint, "
        "backend fallback); implied by the other resilience flags",
    )
    sel.add_argument(
        "--resume",
        type=str,
        default=None,
        metavar="PATH",
        help="checkpoint file: completed row blocks are saved there and a "
        "re-run with the same path resumes instead of recomputing "
        "(grid method only)",
    )
    sel.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retries per failed block before degrading (default 2)",
    )
    sel.add_argument(
        "--fallback",
        dest="fallback",
        action="store_true",
        default=None,
        help="degrade along gpusim -> gpusim-tiled -> multicore -> numpy "
        "on device/backend failures (default when resilient)",
    )
    sel.add_argument(
        "--no-fallback",
        dest="fallback",
        action="store_false",
        help="fail instead of degrading to another backend",
    )
    sel.add_argument(
        "--json",
        action="store_true",
        help="emit the full SelectionResult (incl. resilience report) as JSON",
    )
    sel.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="artifact-cache directory: identical re-runs skip the sweep "
        "on fingerprint hit",
    )

    trace = sub.add_parser(
        "trace",
        help="run one traced bandwidth selection; print the phase tree "
        "and write a Chrome trace-event JSON",
    )
    trace.add_argument("--dgp", type=str, default="paper")
    trace.add_argument(
        "--data",
        type=str,
        default=None,
        help="CSV file of (x, y) observations; overrides --dgp/--n",
    )
    trace.add_argument("--n", type=int, default=2000)
    trace.add_argument("--k", type=int, default=50)
    trace.add_argument("--kernel", type=str, default="epanechnikov")
    trace.add_argument(
        "--method", type=str, default="grid", choices=["grid", "numeric", "rot"]
    )
    trace.add_argument(
        "--backend",
        type=str,
        default="numpy",
        choices=["numpy", "python", "multicore", "compiled", "blocked", "blocked-shm", "blocked-compiled", "gpusim", "gpusim-tiled", "distributed"],
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--output",
        type=str,
        default="trace.json",
        metavar="PATH",
        help="where to write the Chrome trace-event JSON "
        "(pass '-' to skip the file)",
    )
    trace.add_argument(
        "--resilient",
        action="store_true",
        help="run on the resilient execution engine (adds wave/retry spans)",
    )

    srv = sub.add_parser(
        "serve",
        help="serve bandwidth selection over HTTP (cache + micro-batching)",
    )
    srv.add_argument("--host", type=str, default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=8173,
        help="TCP port (0 = let the OS pick; the bound port is printed)",
    )
    srv.add_argument(
        "--dgp", type=str, default="paper",
        help="DGP for the startup 'default' model (skipped with --no-model)",
    )
    srv.add_argument("--data", type=str, default=None,
                     help="CSV of (x, y) for the startup model; overrides --dgp")
    srv.add_argument("--n", type=int, default=1000)
    srv.add_argument("--k", type=int, default=50)
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument("--kernel", type=str, default="epanechnikov")
    srv.add_argument(
        "--backend",
        type=str,
        default="numpy",
        choices=["numpy", "python", "multicore", "compiled", "blocked", "blocked-shm", "blocked-compiled", "gpusim", "gpusim-tiled", "distributed"],
    )
    srv.add_argument(
        "--no-model",
        action="store_true",
        help="start without fitting the default model",
    )
    srv.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="disk tier for the artifact cache (default: memory only)",
    )
    srv.add_argument("--max-batch-size", type=int, default=32)
    srv.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="how long an open batch waits for co-travellers",
    )
    srv.add_argument(
        "--max-queue", type=int, default=256,
        help="admission bound; beyond this requests get HTTP 429",
    )
    srv.add_argument(
        "--no-resilience",
        action="store_true",
        help="do not degrade failed selections down the backend chain",
    )

    wrk = sub.add_parser(
        "workers",
        help="run a local fleet of sweep workers (for --backend "
        "distributed), or probe a running one",
    )
    wrk.add_argument(
        "--count", type=int, default=2,
        help="how many worker processes to spawn",
    )
    wrk.add_argument(
        "--probe",
        type=str,
        default=None,
        metavar="HOST:PORT,...",
        help="heartbeat the given endpoints instead of spawning; exit 0 "
        "only if every worker answers /healthz",
    )

    sub.add_parser(
        "info",
        help="list kernels, backends, devices, programs, serving cache",
    )

    lint = sub.add_parser(
        "lint", help="run the repro-lint static-analysis pass"
    )
    lint.add_argument("paths", nargs="*", default=["src"])
    lint.add_argument(
        "-f", "--format", choices=["text", "json", "sarif"], default="text"
    )
    lint.add_argument("-o", "--output", type=str, default=None)
    lint.add_argument("--select", type=str, default=None)
    lint.add_argument("--ignore", type=str, default=None)
    lint.add_argument("--baseline", type=str, default=None)
    lint.add_argument("--update-baseline", type=str, default=None)
    lint.add_argument(
        "--changed",
        action="store_true",
        help="report only files modified in git",
    )
    lint.add_argument("--list-rules", action="store_true")
    return parser


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.bench import run_table1, shape_report, write_results_json, write_table1_csv

    table = run_table1(
        sizes=_parse_sizes(args.sizes),
        programs=tuple(args.programs.split(",")),
        k=args.k,
        repetitions=args.repetitions,
        seed=args.seed,
    )
    report = shape_report(table)
    print(table.to_text())
    print()
    print(report)
    if args.output:
        from pathlib import Path

        outdir = Path(args.output)
        write_table1_csv(table, outdir / "table1.csv")
        write_results_json(
            outdir / "table1.json", table1=table, shape_report=report
        )
        print(f"\nartifacts written to {outdir}/")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.bench import run_table2, write_results_json, write_table2_csv

    table = run_table2(
        bandwidth_counts=_parse_sizes(args.bandwidths),
        sizes=_parse_sizes(args.sizes),
        repetitions=args.repetitions,
        seed=args.seed,
    )
    print(table.to_text())
    if args.output:
        from pathlib import Path

        outdir = Path(args.output)
        write_table2_csv(table, outdir / "table2.csv")
        write_results_json(outdir / "table2.json", table2=table)
        print(f"\nartifacts written to {outdir}/")
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.bench import run_figure1, write_results_json, write_table1_csv

    fig = run_figure1(
        sizes=_parse_sizes(args.sizes),
        k=args.k,
        repetitions=args.repetitions,
        seed=args.seed,
    )
    print(fig.to_text())
    if args.output:
        from pathlib import Path

        outdir = Path(args.output)
        write_table1_csv(fig.table, outdir / "figure1_series.csv")
        write_results_json(outdir / "figure1.json", table1=fig.table)
        print(f"\nartifacts written to {outdir}/")
    return 0


def _cmd_shape(args: argparse.Namespace) -> int:
    from repro.bench import run_table1, run_table2, shape_report

    table1 = run_table1(
        sizes=_parse_sizes(args.sizes),
        k=args.k,
        repetitions=args.repetitions,
        seed=args.seed,
    )
    table2 = None
    if args.with_table2:
        table2 = run_table2(sizes=_parse_sizes(args.sizes), seed=args.seed)
    report = shape_report(table1, table2)
    print(report)
    return 0 if "FAIL" not in report else 1


def _cmd_select(args: argparse.Namespace) -> int:
    from repro.core import bandwidth_to_scale, select_bandwidth
    from repro.data import generate, load_xy_csv

    if args.data:
        x, y = load_xy_csv(args.data)
    else:
        sample = generate(args.dgp, args.n, seed=args.seed)
        x, y = sample.x, sample.y
    method = {
        "grid": "grid",
        "bagged": "bagged",
        "numeric": "numeric",
        "rot": "rule-of-thumb",
    }[args.method]
    kwargs = {}
    if method in ("grid", "bagged"):
        kwargs.update(n_bandwidths=args.k, backend=args.backend)
        if args.mem_budget is not None:
            kwargs["memory_budget"] = args.mem_budget
        if args.backend == "distributed" and args.workers is not None:
            kwargs["workers"] = args.workers
    if method == "bagged":
        kwargs["root_seed"] = args.root_seed
        if args.subsamples is not None:
            kwargs["subsamples"] = args.subsamples
        if args.subsample_size is not None:
            kwargs["subsample_size"] = args.subsample_size
    wants_resilience = (
        args.resilient
        or args.resume is not None
        or args.max_retries is not None
        or args.fallback is not None
    )
    if wants_resilience:
        from repro.resilience import RetryPolicy
        from repro.resilience.engine import ResilienceConfig

        policy = RetryPolicy(
            max_retries=args.max_retries if args.max_retries is not None else 2
        )
        kwargs["resilience"] = ResilienceConfig(
            policy=policy,
            fallback=args.fallback if args.fallback is not None else True,
            keep_checkpoint=args.resume is not None,
        )
        if args.resume is not None:
            kwargs["resume"] = args.resume
    if args.cache_dir is not None:
        from repro.serving import ArtifactCache

        kwargs["cache"] = ArtifactCache(args.cache_dir)
    result = select_bandwidth(x, y, method=method, kernel=args.kernel, **kwargs)
    fleet_report = None
    if method in ("grid", "bagged") and args.backend == "distributed":
        from repro.distributed import last_fleet_report

        fleet_report = last_fleet_report()
    if args.json:
        import json

        payload = result.to_dict()
        payload["scale_factor"] = bandwidth_to_scale(result.bandwidth, x)
        if fleet_report is not None:
            payload["fleet"] = fleet_report.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(result.summary())
    if result.resilience is not None:
        print(result.resilience.summary())
    if fleet_report is not None:
        print(fleet_report.summary())
    print(f"  scale factor  : {bandwidth_to_scale(result.bandwidth, x):.4f} "
          "(h / spread*n^-1/5, np convention)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core import select_bandwidth
    from repro.data import generate, load_xy_csv
    from repro.obs import Tracer, render_tree, write_chrome_trace

    if args.backend in ("gpusim", "gpusim-tiled"):
        import repro.cuda_port  # noqa: F401 - registers the gpusim backends

    if args.data:
        x, y = load_xy_csv(args.data)
    else:
        sample = generate(args.dgp, args.n, seed=args.seed)
        x, y = sample.x, sample.y
    method = {"grid": "grid", "numeric": "numeric", "rot": "rule-of-thumb"}[
        args.method
    ]
    kwargs: dict = {}
    if method == "grid":
        kwargs.update(n_bandwidths=args.k, backend=args.backend)
    if args.resilient:
        kwargs["resilience"] = True

    tracer = Tracer()
    result = select_bandwidth(
        x, y, method=method, kernel=args.kernel, trace=tracer, **kwargs
    )
    print(result.summary())
    print()
    print(render_tree(tracer))
    if args.output and args.output != "-":
        write_chrome_trace(args.output, tracer, process_name="repro")
        print(f"\nchrome trace written to {args.output} "
              "(open in chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import SchedulerConfig, ServingApp, ServingConfig, serve_forever

    config = ServingConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        predict=SchedulerConfig(
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue,
        ),
        resilience=not args.no_resilience,
        default_backend=args.backend,
        default_kernel=args.kernel,
        default_n_bandwidths=args.k,
    )
    app = ServingApp(config)
    if not args.no_model:
        from repro.data import generate, load_xy_csv

        if args.data:
            x, y = load_xy_csv(args.data)
        else:
            sample = generate(args.dgp, args.n, seed=args.seed)
            x, y = sample.x, sample.y
        record = app.registry.fit(
            "default",
            x,
            y,
            kernel=args.kernel,
            n_bandwidths=args.k,
            backend=args.backend,
        )
        print(
            f"fitted model 'default' (n={len(x)}, "
            f"h*={record.bandwidth:.6g})",
            flush=True,
        )
    serve_forever(app)
    return 0


def _cmd_workers(args: argparse.Namespace) -> int:
    from repro.distributed import HttpFleet, LocalProcessFleet

    if args.probe is not None:
        endpoints = [p.strip() for p in args.probe.split(",") if p.strip()]
        fleet = HttpFleet(endpoints)
        fleet.heartbeat(timeout=2.0, miss_threshold=1)
        for handle in fleet.handles:
            state = "up" if handle.alive else "DOWN"
            print(f"  {handle.transport.endpoint:<28} {state}")
        live = fleet.live()
        print(f"{len(live)}/{len(fleet.handles)} workers answering")
        return 0 if len(live) == len(fleet.handles) else 1

    import signal
    import threading

    fleet = LocalProcessFleet(args.count)
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    try:
        endpoints = ",".join(h.transport.endpoint for h in fleet.handles)
        for handle in fleet.handles:
            print(f"  {handle.worker_id:<12} {handle.transport.endpoint}")
        print(f"export REPRO_WORKERS={endpoints}")
        print("fleet up; Ctrl-C to stop", flush=True)
        stop.wait()
    finally:
        fleet.close()
    print("fleet stopped; bye")
    return 0


def _cmd_info(_: argparse.Namespace) -> int:
    import repro.compiled.backend  # noqa: F401 - registers the compiled pair
    import repro.cuda_port  # noqa: F401 - registers the gpusim backend
    import repro.distributed.backend  # noqa: F401 - registers "distributed"
    from repro.bench import PROGRAMS
    from repro.core import list_backends
    from repro.data import DGP_REGISTRY
    from repro.gpusim import DEVICE_REGISTRY
    from repro.kernels import fast_grid_kernels, list_kernels
    from repro.serving import ArtifactCache, ServingConfig
    from repro.utils.membudget import MEMORY_BUDGET_ENV, resolve_budget

    print("kernels        :", ", ".join(list_kernels()))
    print("fast-grid OK   :", ", ".join(fast_grid_kernels()))
    print("backends       :", ", ".join(list_backends()))
    print("devices        :", ", ".join(sorted(DEVICE_REGISTRY)))
    print("programs       :", ", ".join(sorted(PROGRAMS)))
    print("DGPs           :", ", ".join(sorted(DGP_REGISTRY)))
    import os

    budget = resolve_budget()
    source = (
        f"${MEMORY_BUDGET_ENV}"
        if os.environ.get(MEMORY_BUDGET_ENV, "").strip()
        else "default"
    )
    print(
        "memory budget  :",
        f"{budget:,} B ({budget / 1024**2:.0f} MiB, {source}) for the "
        "blocked/blocked-shm sweep",
    )
    from repro.compiled import capability
    from repro.utils.calibration import calibration_source, host_bytes_per_second

    cap = capability()
    print("compiled engine:", f"{cap.implementation} ({cap.reason})")
    rate = host_bytes_per_second()
    print(
        "host bandwidth :",
        f"{rate / 1e9:.2f} GB/s ({calibration_source()}) for sweep-time "
        "estimates",
    )
    defaults = ServingConfig()
    cache = ArtifactCache(None)
    desc = cache.describe()
    print(
        "serving        :",
        f"default {defaults.host}:{defaults.port}, "
        f"backend={defaults.default_backend}, "
        f"kernel={defaults.default_kernel}",
    )
    print(
        "serving cache  :",
        f"memory budget {desc['max_memory_bytes']} B, "
        f"disk tier {'on' if desc['directory'] else 'off (pass --cache-dir)'}, "
        f"entries {desc['memory_entries']}",
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import main as lint_main

    argv: list[str] = ["--format", args.format]
    if args.output:
        argv += ["--output", args.output]
    if args.select:
        argv += ["--select", args.select]
    if args.ignore:
        argv += ["--ignore", args.ignore]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.update_baseline:
        argv += ["--update-baseline", args.update_baseline]
    if args.changed:
        argv.append("--changed")
    if args.list_rules:
        argv.append("--list-rules")
    argv += list(args.paths)
    return lint_main(argv)


_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "fig1": _cmd_fig1,
    "shape": _cmd_shape,
    "select": _cmd_select,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "workers": _cmd_workers,
    "info": _cmd_info,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
