"""Nadaraya–Watson (local constant) kernel regression.

The estimator the paper's bandwidth is *for* (§IV: "the Nadaraya-Watson
local constant estimator is used ... the most commonly used kernel
regression estimator and the default in the common R package np"):

    ĝ(x) = Σ_l Y_l·K((x − X_l)/h)  /  Σ_l K((x − X_l)/h)

:class:`NadarayaWatson` follows the fit/predict convention; the bandwidth
can be given explicitly or chosen at fit time by any
:class:`repro.core.selectors.BandwidthSelector`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.exceptions import SelectionError, ValidationError
from repro.kernels import Kernel, get_kernel
from repro.core.result import SelectionResult
from repro.core.selectors import BandwidthSelector, GridSearchSelector
from repro.utils.chunking import chunk_slices, suggest_chunk_rows
from repro.utils.numeric import is_zero
from repro.utils.validation import as_float_array, check_paired_samples

__all__ = ["NadarayaWatson", "nw_estimate"]


def nw_estimate(
    x: np.ndarray,
    y: np.ndarray,
    at: np.ndarray,
    h: float,
    kernel: str | Kernel = "epanechnikov",
    *,
    chunk_rows: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate the NW estimator at arbitrary points.

    Returns ``(estimates, valid)``; points whose kernel window is empty
    get NaN and ``valid=False`` (the prediction-time counterpart of the
    paper's ``M(X_i)`` indicator).
    """
    x, y = check_paired_samples(x, y)
    at = as_float_array(at, name="at")
    kern = get_kernel(kernel)
    if h <= 0.0:
        raise ValidationError(f"bandwidth must be positive, got {h}")
    m = at.shape[0]
    out = np.full(m, np.nan, dtype=np.float64)
    valid = np.zeros(m, dtype=bool)
    rows = chunk_rows or suggest_chunk_rows(x.shape[0], working_arrays=3)
    for sl in chunk_slices(m, rows):
        w = kern((at[sl, None] - x[None, :]) / h)
        den = w.sum(axis=1)
        num = w @ y
        ok = den > 0.0
        out[sl] = np.where(ok, num / np.where(ok, den, 1.0), np.nan)
        valid[sl] = ok
    return out, valid


class NadarayaWatson:
    """Nadaraya–Watson regression with pluggable bandwidth selection.

    Parameters
    ----------
    kernel:
        Kernel name or instance (Epanechnikov default, as in the paper).
    bandwidth:
        Fixed bandwidth.  When omitted, ``selector`` (default: the fast
        grid search) chooses one during :meth:`fit`.
    selector:
        A :class:`BandwidthSelector` used when ``bandwidth`` is None.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.regression import NadarayaWatson
    >>> rng = np.random.default_rng(1)
    >>> x = rng.uniform(0, 1, 300)
    >>> y = np.sin(6 * x) + rng.normal(0, 0.2, 300)
    >>> model = NadarayaWatson().fit(x, y)
    >>> yhat = model.predict(np.linspace(0.1, 0.9, 5))
    >>> yhat.shape
    (5,)
    """

    def __init__(
        self,
        kernel: str | Kernel = "epanechnikov",
        *,
        bandwidth: float | None = None,
        selector: BandwidthSelector | None = None,
        **selector_options: Any,
    ):
        self.kernel = get_kernel(kernel)
        if bandwidth is not None and bandwidth <= 0.0:
            raise ValidationError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth: float | None = bandwidth
        self.selector = selector or (
            None
            if bandwidth is not None
            else GridSearchSelector(self.kernel.name, **selector_options)
        )
        self.selection_: SelectionResult | None = None
        self.x_: np.ndarray | None = None
        self.y_: np.ndarray | None = None

    # -- fitting -----------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray) -> "NadarayaWatson":
        """Store the sample; select the bandwidth if not fixed."""
        x, y = check_paired_samples(x, y)
        self.x_, self.y_ = x, y
        if self.bandwidth is None:
            assert self.selector is not None
            self.selection_ = self.selector.select(x, y)
            self.bandwidth = self.selection_.bandwidth
        return self

    def _check_fitted(self) -> tuple[np.ndarray, np.ndarray, float]:
        if self.x_ is None or self.y_ is None or self.bandwidth is None:
            raise SelectionError("model is not fitted; call fit(x, y) first")
        return self.x_, self.y_, self.bandwidth

    # -- inference ---------------------------------------------------------

    def predict(self, at: np.ndarray) -> np.ndarray:
        """NW estimates at ``at`` (NaN where the kernel window is empty)."""
        x, y, h = self._check_fitted()
        est, _ = nw_estimate(x, y, at, h, self.kernel)
        return est

    def predict_with_validity(self, at: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`predict` but also returns the window-non-empty mask."""
        x, y, h = self._check_fitted()
        return nw_estimate(x, y, at, h, self.kernel)

    def fitted_values(self) -> np.ndarray:
        """In-sample estimates ``ĝ(X_i)`` (observation i included)."""
        x, _, _ = self._check_fitted()
        return self.predict(x)

    def loo_fitted_values(self) -> tuple[np.ndarray, np.ndarray]:
        """Leave-one-out estimates ``ĝ₋ᵢ(X_i)`` and the ``M(X_i)`` mask."""
        from repro.core.loocv import loo_estimates

        x, y, h = self._check_fitted()
        return loo_estimates(x, y, h, self.kernel)

    def residuals(self) -> np.ndarray:
        """In-sample residuals ``Y_i − ĝ(X_i)``."""
        x, y, _ = self._check_fitted()
        return y - self.fitted_values()

    def cv_score(self) -> float:
        """``CV_lc`` at the fitted bandwidth."""
        from repro.core.loocv import cv_score as _cv

        x, y, h = self._check_fitted()
        return _cv(x, y, h, self.kernel)

    def r_squared(self) -> float:
        """Pseudo-R²: ``1 − SSR/SST`` using in-sample fits (valid points)."""
        x, y, _ = self._check_fitted()
        fitted = self.fitted_values()
        ok = np.isfinite(fitted)
        resid = y[ok] - fitted[ok]
        centred = y[ok] - y[ok].mean()
        sst = float(np.dot(centred, centred))
        if is_zero(sst):
            return 1.0
        return 1.0 - float(np.dot(resid, resid)) / sst
