"""Leave-one-out cross-validated confidence intervals.

Paper §II names this as a direct application of the machinery built here:
"the estimation of leave-one-out cross-validated confidence intervals for
kernel density estimates and kernel regressions".

For the NW estimator at a point x₀ with weights
``w_l = K((x₀−X_l)/h)``, the standard pointwise sandwich variance is

    V̂(x₀) = Σ_l w_l²·ê_l²  /  (Σ_l w_l)²

where ``ê_l`` are residuals.  Using *leave-one-out* residuals
``ê_l = Y_l − ĝ₋ₗ(X_l)`` instead of in-sample residuals removes the
optimistic bias of reusing each observation in its own fit — that is the
cross-validated variant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import ValidationError
from repro.kernels import Kernel, get_kernel
from repro.core.loocv import loo_estimates
from repro.utils.chunking import chunk_slices, suggest_chunk_rows
from repro.utils.validation import as_float_array, check_paired_samples, check_probability

__all__ = ["ConfidenceBand", "loo_confidence_band"]


@dataclass(frozen=True)
class ConfidenceBand:
    """A pointwise confidence band for a kernel regression curve."""

    at: np.ndarray
    estimate: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    valid: np.ndarray
    level: float
    bandwidth: float

    @property
    def width(self) -> np.ndarray:
        """Band width ``upper − lower`` at each evaluation point."""
        return self.upper - self.lower

    def coverage_of(self, truth: np.ndarray) -> float:
        """Fraction of valid points whose band contains ``truth``.

        A simulation-study helper: with a known mean function, repeated
        draws should cover at roughly the nominal level.
        """
        truth = np.asarray(truth, dtype=float)
        if truth.shape != self.estimate.shape:
            raise ValidationError(
                f"truth shape {truth.shape} != band shape {self.estimate.shape}"
            )
        ok = self.valid
        if not ok.any():
            return float("nan")
        hit = (truth[ok] >= self.lower[ok]) & (truth[ok] <= self.upper[ok])
        return float(hit.mean())


def loo_confidence_band(
    x: np.ndarray,
    y: np.ndarray,
    at: np.ndarray,
    h: float,
    kernel: str | Kernel = "epanechnikov",
    *,
    level: float = 0.95,
    chunk_rows: int | None = None,
) -> ConfidenceBand:
    """Pointwise CV'd confidence band for the NW curve at points ``at``.

    Points whose kernel window is empty are flagged invalid (NaN bounds);
    observations with an empty leave-one-out window contribute a zero
    residual, mirroring the ``M(X_i)`` convention of the CV objective.
    """
    x, y = check_paired_samples(x, y)
    at = as_float_array(at, name="at")
    kern = get_kernel(kernel)
    if h <= 0.0:
        raise ValidationError(f"bandwidth must be positive, got {h}")
    level = check_probability(level, name="level")
    z = float(stats.norm.ppf(0.5 + level / 2.0))

    g_loo, loo_ok = loo_estimates(x, y, h, kern, chunk_rows=chunk_rows)
    loo_resid_sq = np.where(loo_ok, (y - np.where(loo_ok, g_loo, 0.0)) ** 2, 0.0)

    m = at.shape[0]
    est = np.full(m, np.nan, dtype=np.float64)
    se = np.full(m, np.nan, dtype=np.float64)
    valid = np.zeros(m, dtype=bool)
    rows = chunk_rows or suggest_chunk_rows(x.shape[0], working_arrays=4)
    for sl in chunk_slices(m, rows):
        w = kern((at[sl, None] - x[None, :]) / h)
        den = w.sum(axis=1)
        ok = den > 0.0
        safe = np.where(ok, den, 1.0)
        est[sl] = np.where(ok, (w @ y) / safe, np.nan)
        var = ((w * w) @ loo_resid_sq) / (safe * safe)
        se[sl] = np.where(ok, np.sqrt(var), np.nan)
        valid[sl] = ok

    return ConfidenceBand(
        at=at,
        estimate=est,
        lower=est - z * se,
        upper=est + z * se,
        valid=valid,
        level=level,
        bandwidth=float(h),
    )
