"""Kernel regression estimators built on the selected bandwidth."""

from repro.regression.confidence import ConfidenceBand, loo_confidence_band
from repro.regression.local_linear import LocalLinear, local_linear_estimate
from repro.regression.local_polynomial import (
    LocalPolynomial,
    local_polynomial_estimate,
)
from repro.regression.nadaraya_watson import NadarayaWatson, nw_estimate

__all__ = [
    "ConfidenceBand",
    "LocalLinear",
    "LocalPolynomial",
    "NadarayaWatson",
    "local_linear_estimate",
    "local_polynomial_estimate",
    "loo_confidence_band",
    "nw_estimate",
]
