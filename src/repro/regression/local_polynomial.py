"""Local polynomial regression of arbitrary degree.

Completes the estimator ladder: degree 0 is the Nadaraya–Watson
estimator the paper's bandwidth is selected for, degree 1 the local
linear fit, and higher degrees trade variance for bias reduction at
peaks and valleys (degree 2 estimates curvature without the local-linear
fit's attenuation there).

At each evaluation point x₀ the estimator solves

    min_β Σ_l K((x₀−X_l)/h) · (Y_l − Σ_q β_q (X_l−x₀)^q)²

and reports ``ĝ(x₀) = β₀`` (and optionally the derivative estimates
``q!·β_q``).  Implementation: the weighted moment matrices
``S_{qr} = Σ w (X−x₀)^{q+r}`` and ``T_q = Σ w Y (X−x₀)^q`` are built for
a whole chunk of evaluation points at once and the (p+1)×(p+1) systems
solved batched — no per-point python loop.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.exceptions import SelectionError, ValidationError
from repro.kernels import Kernel, get_kernel
from repro.core.selectors import BandwidthSelector, GridSearchSelector
from repro.utils.chunking import chunk_slices, suggest_chunk_rows
from repro.utils.validation import as_float_array, check_paired_samples, check_positive_int

__all__ = ["LocalPolynomial", "local_polynomial_estimate"]


def local_polynomial_estimate(
    x: np.ndarray,
    y: np.ndarray,
    at: np.ndarray,
    h: float,
    degree: int = 2,
    kernel: str | Kernel = "epanechnikov",
    *,
    chunk_rows: int | None = None,
    return_derivatives: bool = False,
    ridge: float = 1e-10,
) -> tuple[np.ndarray, np.ndarray]:
    """Degree-``degree`` local polynomial estimates at ``at``.

    Returns ``(estimates, valid)``, or ``(coefficients, valid)`` with
    shape (m, degree+1) when ``return_derivatives`` — row q holding the
    q-th derivative estimate ``q!·β_q``.

    ``valid`` is False where the weighted design is (numerically)
    singular: empty window, or fewer than ``degree+1`` distinct in-window
    X values.  A small relative ``ridge`` on the moment matrix diagonal
    stabilises near-singular fits.
    """
    x, y = check_paired_samples(x, y)
    at = as_float_array(at, name="at")
    kern = get_kernel(kernel)
    if h <= 0.0:
        raise ValidationError(f"bandwidth must be positive, got {h}")
    degree = check_positive_int(degree + 1, name="degree + 1") - 1
    p1 = degree + 1

    m = at.shape[0]
    coefs = np.full((m, p1), np.nan, dtype=np.float64)
    valid = np.zeros(m, dtype=bool)
    rows = chunk_rows or suggest_chunk_rows(x.shape[0], working_arrays=4 + p1)

    for sl in chunk_slices(m, rows):
        centred = x[None, :] - at[sl, None]  # (mc, n)
        w = kern(-centred / h)
        mc = centred.shape[0]
        # Moments S_s = Σ w·(X−x₀)^s for s = 0..2p and T_q for q = 0..p.
        powers = [np.ones_like(centred)]
        for _ in range(2 * degree):
            powers.append(powers[-1] * centred)
        s_moments = np.stack([(w * pw).sum(axis=1) for pw in powers], axis=1)
        t_moments = np.stack(
            [(w * powers[q]) @ y for q in range(p1)], axis=1
        )

        # Assemble the (p+1)x(p+1) normal matrices per point.
        gram = np.empty((mc, p1, p1), dtype=np.float64)
        for q in range(p1):
            for r in range(p1):
                gram[:, q, r] = s_moments[:, q + r]
        # Relative ridge keeps nearly-singular windows solvable; truly
        # singular ones are detected below and flagged invalid.
        gram_scale = np.maximum(np.abs(gram).max(axis=(1, 2)), 1e-300)
        gram += ridge * gram_scale[:, None, None] * np.eye(p1)[None, :, :]

        ok = s_moments[:, 0] > 0.0
        solved = np.full((mc, p1), np.nan, dtype=np.float64)
        if np.any(ok):
            try:
                # Trailing axis: numpy >= 2 requires an explicit column
                # vector for stacked solves.
                solved[ok] = np.linalg.solve(
                    gram[ok], t_moments[ok][..., None]
                )[..., 0]
            except np.linalg.LinAlgError:
                # Batch solve failed: fall back per point to isolate the
                # singular windows.
                for i in np.flatnonzero(ok):
                    try:
                        solved[i] = np.linalg.solve(gram[i], t_moments[i])
                    except np.linalg.LinAlgError:
                        ok[i] = False
        # Sanity: a wildly conditioned solve can return huge values; mark
        # estimates far outside the data range invalid instead.
        span = float(np.abs(y).max()) + 1.0
        crazy = np.abs(solved[:, 0]) > 1e6 * span
        ok &= ~crazy
        coefs[sl] = np.where(ok[:, None], solved, np.nan)
        valid[sl] = ok

    if return_derivatives:
        factorials = np.array([math.factorial(q) for q in range(p1)])
        return coefs * factorials[None, :], valid
    return coefs[:, 0], valid


class LocalPolynomial:
    """Local polynomial regression with pluggable bandwidth selection.

    Interface mirrors :class:`repro.regression.NadarayaWatson`; degree 0
    reproduces it exactly, degree 1 the local linear fit.
    """

    def __init__(
        self,
        degree: int = 2,
        kernel: str | Kernel = "epanechnikov",
        *,
        bandwidth: float | None = None,
        selector: BandwidthSelector | None = None,
        **selector_options: Any,
    ):
        if degree < 0:
            raise ValidationError(f"degree must be >= 0, got {degree}")
        self.degree = int(degree)
        self.kernel = get_kernel(kernel)
        if bandwidth is not None and bandwidth <= 0.0:
            raise ValidationError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth: float | None = bandwidth
        self.selector = selector or (
            None
            if bandwidth is not None
            else GridSearchSelector(self.kernel.name, **selector_options)
        )
        self.selection_ = None
        self.x_: np.ndarray | None = None
        self.y_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LocalPolynomial":
        """Store the sample; select the bandwidth if not fixed."""
        x, y = check_paired_samples(x, y)
        self.x_, self.y_ = x, y
        if self.bandwidth is None:
            assert self.selector is not None
            self.selection_ = self.selector.select(x, y)
            self.bandwidth = self.selection_.bandwidth
        return self

    def _check_fitted(self) -> tuple[np.ndarray, np.ndarray, float]:
        if self.x_ is None or self.y_ is None or self.bandwidth is None:
            raise SelectionError("model is not fitted; call fit(x, y) first")
        return self.x_, self.y_, self.bandwidth

    def predict(self, at: np.ndarray) -> np.ndarray:
        """Curve estimates at ``at`` (NaN where unidentified)."""
        x, y, h = self._check_fitted()
        est, _ = local_polynomial_estimate(
            x, y, at, h, self.degree, self.kernel
        )
        return est

    def derivatives(self, at: np.ndarray) -> np.ndarray:
        """Estimated derivatives ``[g, g', ..., g^(degree)]`` at ``at``."""
        x, y, h = self._check_fitted()
        der, _ = local_polynomial_estimate(
            x, y, at, h, self.degree, self.kernel, return_derivatives=True
        )
        return der

    def residuals(self) -> np.ndarray:
        """In-sample residuals ``Y_i − ĝ(X_i)``."""
        x, y, _ = self._check_fitted()
        return y - self.predict(x)
