"""Local linear kernel regression.

The paper uses the local *constant* (Nadaraya–Watson) estimator and notes
local linear regression as the alternative (§IV).  It is included because
downstream users expect it — boundary bias is the local-constant
estimator's best-known weakness and the local-linear fit removes it — and
because the same CV-selected bandwidth is routinely reused across the two.

At each evaluation point x₀ the estimator solves the kernel-weighted
least-squares problem

    min_{a,b} Σ_l K((x₀−X_l)/h) · (Y_l − a − b·(X_l − x₀))²

and reports ``ĝ(x₀) = a``.  Closed form via the weighted moments:

    a = (S₂·T₀ − S₁·T₁) / (S₂·S₀ − S₁²),
    S_p = Σ w_l·(X_l−x₀)^p,  T_p = Σ w_l·Y_l·(X_l−x₀)^p.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.exceptions import SelectionError, ValidationError
from repro.kernels import Kernel, get_kernel
from repro.core.selectors import BandwidthSelector, GridSearchSelector
from repro.utils.chunking import chunk_slices, suggest_chunk_rows
from repro.utils.validation import as_float_array, check_paired_samples

__all__ = ["LocalLinear", "local_linear_estimate"]


def local_linear_estimate(
    x: np.ndarray,
    y: np.ndarray,
    at: np.ndarray,
    h: float,
    kernel: str | Kernel = "epanechnikov",
    *,
    chunk_rows: int | None = None,
    ridge: float = 1e-12,
) -> tuple[np.ndarray, np.ndarray]:
    """Local linear estimates at ``at``; returns ``(estimates, valid)``.

    ``valid`` is False where the weighted design is singular (empty window,
    or all in-window X identical — there the slope is unidentified and the
    local-constant value would be the only sensible fallback).  A tiny
    ``ridge`` stabilises near-singular fits.
    """
    x, y = check_paired_samples(x, y)
    at = as_float_array(at, name="at")
    kern = get_kernel(kernel)
    if h <= 0.0:
        raise ValidationError(f"bandwidth must be positive, got {h}")
    m = at.shape[0]
    out = np.full(m, np.nan, dtype=np.float64)
    valid = np.zeros(m, dtype=bool)
    rows = chunk_rows or suggest_chunk_rows(x.shape[0], working_arrays=5)
    for sl in chunk_slices(m, rows):
        centred = x[None, :] - at[sl, None]
        w = kern(-centred / h)  # symmetric kernels: K(-u) = K(u)
        s0 = w.sum(axis=1)
        s1 = (w * centred).sum(axis=1)
        s2 = (w * centred * centred).sum(axis=1)
        t0 = w @ y
        t1 = (w * centred) @ y
        det = s2 * s0 - s1 * s1
        ok = (s0 > 0.0) & (det > ridge * np.maximum(s2 * s0, 1e-300))
        safe_det = np.where(ok, det, 1.0)
        out[sl] = np.where(ok, (s2 * t0 - s1 * t1) / safe_det, np.nan)
        valid[sl] = ok
    return out, valid


class LocalLinear:
    """Local linear regression with pluggable bandwidth selection.

    Interface mirrors :class:`repro.regression.NadarayaWatson`.  The
    default selector still minimises the *local-constant* CV objective —
    the paper's quantity — which in practice transfers well; pass an
    explicit ``bandwidth`` to decouple.
    """

    def __init__(
        self,
        kernel: str | Kernel = "epanechnikov",
        *,
        bandwidth: float | None = None,
        selector: BandwidthSelector | None = None,
        **selector_options: Any,
    ):
        self.kernel = get_kernel(kernel)
        if bandwidth is not None and bandwidth <= 0.0:
            raise ValidationError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth: float | None = bandwidth
        self.selector = selector or (
            None
            if bandwidth is not None
            else GridSearchSelector(self.kernel.name, **selector_options)
        )
        self.selection_ = None
        self.x_: np.ndarray | None = None
        self.y_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LocalLinear":
        """Store the sample; select the bandwidth if not fixed."""
        x, y = check_paired_samples(x, y)
        self.x_, self.y_ = x, y
        if self.bandwidth is None:
            assert self.selector is not None
            self.selection_ = self.selector.select(x, y)
            self.bandwidth = self.selection_.bandwidth
        return self

    def _check_fitted(self) -> tuple[np.ndarray, np.ndarray, float]:
        if self.x_ is None or self.y_ is None or self.bandwidth is None:
            raise SelectionError("model is not fitted; call fit(x, y) first")
        return self.x_, self.y_, self.bandwidth

    def predict(self, at: np.ndarray) -> np.ndarray:
        """Local linear estimates at ``at`` (NaN where unidentified)."""
        x, y, h = self._check_fitted()
        est, _ = local_linear_estimate(x, y, at, h, self.kernel)
        return est

    def predict_with_validity(self, at: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`predict` plus the identifiability mask."""
        x, y, h = self._check_fitted()
        return local_linear_estimate(x, y, at, h, self.kernel)

    def fitted_values(self) -> np.ndarray:
        """In-sample estimates ``ĝ(X_i)``."""
        x, _, _ = self._check_fitted()
        return self.predict(x)

    def residuals(self) -> np.ndarray:
        """In-sample residuals ``Y_i − ĝ(X_i)``."""
        x, y, _ = self._check_fitted()
        return y - self.fitted_values()
