"""A small process-pool wrapper for embarrassingly parallel row sweeps.

This substrate plays the role of the paper's "Multicore R" program
(data.table + parallel): it fans the per-observation leave-one-out work
out over OS processes and sums the partial results.  Two properties drive
the design:

* **Reusability.**  A numerical optimiser calls the CV objective dozens of
  times; forking a fresh pool per call would swamp the computation (and is
  precisely why the multicore program has a ~1.4 s floor at small n in
  Table I).  :class:`WorkerPool` therefore wraps one long-lived
  ``multiprocessing.Pool`` usable as a context manager across many calls.
* **Picklability.**  Work units are top-level functions plus plain
  ndarray/scalar args, nothing closure-captured.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Any, Callable, Iterable, Sequence

from repro.exceptions import ValidationError
from repro.parallel.partition import balanced_blocks

__all__ = ["WorkerPool", "available_workers", "parallel_sum"]


def available_workers(requested: int | None = None) -> int:
    """Resolve a worker count: explicit request, else CPU count.

    The paper's machine had 16 CPU cores; ours may have fewer — the bench
    harness records the count it actually used.
    """
    if requested is not None:
        if requested <= 0:
            raise ValidationError(f"workers must be positive, got {requested}")
        return requested
    return os.cpu_count() or 1


class WorkerPool:
    """Long-lived process pool with a sum-reduce convenience.

    Example
    -------
    >>> from repro.parallel import WorkerPool
    >>> def square(v):
    ...     return v * v
    >>> with WorkerPool(workers=2) as pool:      # doctest: +SKIP
    ...     pool.map(square, [1, 2, 3])
    [1, 4, 9]
    """

    def __init__(self, workers: int | None = None):
        self.workers = available_workers(workers)
        self._pool: mp.pool.Pool | None = None

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        self.open()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def open(self) -> None:
        """Start the worker processes (idempotent)."""
        if self._pool is None:
            self._pool = mp.get_context("fork").Pool(self.workers)

    def close(self) -> None:
        """Terminate the worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    @property
    def is_open(self) -> bool:
        """Whether worker processes are currently alive."""
        return self._pool is not None

    # -- execution ---------------------------------------------------------

    def starmap(self, func: Callable, args_list: Sequence[tuple]) -> list:
        """``starmap`` over the pool; falls back to serial when 1 worker."""
        if self.workers == 1 or len(args_list) <= 1:
            return [func(*args) for args in args_list]
        self.open()
        assert self._pool is not None
        return self._pool.starmap(func, args_list)

    def map(self, func: Callable, items: Iterable) -> list:
        """``map`` over the pool; falls back to serial when 1 worker."""
        items = list(items)
        if self.workers == 1 or len(items) <= 1:
            return [func(item) for item in items]
        self.open()
        assert self._pool is not None
        return self._pool.map(func, items)

    def sum_over_blocks(
        self,
        func: Callable,
        total: int,
        *,
        shared_args: tuple = (),
        block_args: Callable[[int, int], tuple] | None = None,
    ) -> Any:
        """Sum ``func(*shared_args, start, stop)`` over a row partition.

        ``total`` rows are split into one block per worker.  The default
        call signature appends ``(start, stop)`` to ``shared_args``;
        pass ``block_args`` to customise.
        """
        blocks = balanced_blocks(total, self.workers)
        if block_args is None:
            args_list = [shared_args + (start, stop) for start, stop in blocks]
        else:
            args_list = [block_args(start, stop) for start, stop in blocks]
        partials = self.starmap(func, args_list)
        result = partials[0]
        for part in partials[1:]:
            result = result + part
        return result


def parallel_sum(
    func: Callable,
    total: int,
    *,
    shared_args: tuple = (),
    workers: int | None = None,
) -> Any:
    """One-shot :meth:`WorkerPool.sum_over_blocks` with pool lifecycle.

    Convenience for single grid searches; optimisation loops should hold a
    :class:`WorkerPool` open across objective calls instead.
    """
    with WorkerPool(workers) as pool:
        return pool.sum_over_blocks(func, total, shared_args=shared_args)
