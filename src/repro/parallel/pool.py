"""A small process-pool wrapper for embarrassingly parallel row sweeps.

This substrate plays the role of the paper's "Multicore R" program
(data.table + parallel): it fans the per-observation leave-one-out work
out over OS processes and sums the partial results.  Three properties
drive the design:

* **Reusability.**  A numerical optimiser calls the CV objective dozens of
  times; forking a fresh pool per call would swamp the computation (and is
  precisely why the multicore program has a ~1.4 s floor at small n in
  Table I).  :class:`WorkerPool` therefore wraps one long-lived
  ``multiprocessing.Pool`` usable as a context manager across many calls.
* **Picklability.**  Work units are top-level functions plus plain
  ndarray/scalar args, nothing closure-captured.
* **Explicit lifecycle.**  A pool has exactly one life: once
  :meth:`close` (or :meth:`terminate`) retires it, re-entry raises a typed
  :class:`~repro.exceptions.PoolStateError` instead of a raw
  ``multiprocessing`` error or — worse — silently forking a fresh set of
  workers behind the caller's back.  Crashed pools are replaced via
  :meth:`rebuild`, which the resilience layer drives.

Every work-unit submission passes through the fault-injection hooks in
:mod:`repro.resilience.faults`: under an active chaos plan, the parent
pre-draws a per-unit directive and ships it with the unit, so injected
worker crashes/timeouts are raised *inside the child* and replay
deterministically regardless of worker scheduling.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.pool
import os
from typing import Any, Callable, Iterable, Sequence

from repro.exceptions import PoolStateError, ValidationError
from repro.obs.tracer import (
    Tracer,
    current_tracer,
    reset_worker_context,
    use_tracer,
)
from repro.parallel.partition import balanced_blocks
from repro.resilience import faults

__all__ = ["WorkerPool", "available_workers", "parallel_sum", "traced_work_unit"]


def traced_work_unit(func: Callable, *args: Any) -> tuple:
    """Run ``func(*args)`` under a fresh local tracer; ship spans home.

    The picklable wrapper the pool uses when the *parent* is tracing:
    the worker records its own span tree (fork-started workers share the
    parent's ``CLOCK_MONOTONIC`` origin, so timestamps align) and the
    parent grafts it back with :meth:`repro.obs.Tracer.adopt`.

    Returns ``(result, spans, counters, maxima)``.
    """
    tracer = Tracer()
    with use_tracer(tracer):
        result = func(*args)
    return result, tracer.export_spans(), tracer.counters(), tracer.maxima()


def _compose_initializer(
    user_init: Callable[..., None] | None, user_args: tuple
) -> None:
    """Worker bootstrap: reset inherited trace state, then user init.

    Top-level (hence picklable) so the pool can re-run it on every fork —
    including the reforks done by :meth:`WorkerPool.rebuild`, which must
    re-register the *same* user initializer and initargs (shared-memory
    workspaces re-attach through exactly this path).
    """
    # reset_worker_context: forked children inherit the parent's
    # contextvars; a stale active tracer/span there would record into a
    # dead copy, so workers start traced-off.
    reset_worker_context()
    if user_init is not None:
        user_init(*user_args)


def available_workers(requested: int | None = None) -> int:
    """Resolve a worker count: explicit request, else CPU count.

    The paper's machine had 16 CPU cores; ours may have fewer — the bench
    harness records the count it actually used.
    """
    if requested is not None:
        if requested <= 0:
            raise ValidationError(f"workers must be positive, got {requested}")
        return requested
    return os.cpu_count() or 1


class WorkerPool:
    """Long-lived process pool with a sum-reduce convenience.

    Example
    -------
    >>> from repro.parallel import WorkerPool
    >>> def square(v):
    ...     return v * v
    >>> with WorkerPool(workers=2) as pool:      # doctest: +SKIP
    ...     pool.map(square, [1, 2, 3])
    [1, 4, 9]
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ):
        self.workers = available_workers(workers)
        #: Per-worker bootstrap run on every fork — stored on the pool so
        #: :meth:`rebuild` re-registers it (and its args) on the fresh
        #: worker set instead of silently dropping it.
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self._pool: mp.pool.Pool | None = None
        self._closed = False
        #: Times the worker set was torn down and reforked (see rebuild()).
        self.rebuilds = 0

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        self.open()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        # On exception, don't wait for stragglers: the computation is
        # abandoned, so the workers are too (close() would join() them).
        if exc_type is not None:
            self.terminate()
        else:
            self.close()

    def open(self) -> None:
        """Start the worker processes (idempotent while the pool lives).

        Raises
        ------
        PoolStateError
            When the pool has been retired by :meth:`close` or
            :meth:`terminate`.  A retired pool stays retired — construct a
            new :class:`WorkerPool` instead of resurrecting one whose
            workers already exited.
        """
        if self._closed:
            raise PoolStateError(
                "re-entry of a closed worker pool; its processes have "
                "exited — construct a new WorkerPool instead"
            )
        if self._pool is None:
            self._pool = mp.get_context("fork").Pool(
                self.workers,
                initializer=_compose_initializer,
                initargs=(self.initializer, self.initargs),
            )

    def close(self) -> None:
        """Gracefully retire the pool: finish queued work, join, forget.

        Idempotent: closing a closed (or never-opened) pool is a no-op.
        """
        if self._closed:
            return
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        self._closed = True

    def terminate(self) -> None:
        """Retire the pool immediately, abandoning in-flight work.

        The SIGTERM path: used when an exception is unwinding or a block
        timed out and its worker may never return.  Idempotent.
        """
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self._closed = True

    def rebuild(self) -> None:
        """Replace the worker set: terminate survivors, fork a fresh pool.

        The recovery path after a worker crash or hang — the pool object
        (and whatever holds a reference to it) stays valid while the OS
        processes underneath are swapped out.  Counts in :attr:`rebuilds`.
        """
        if self._closed:
            raise PoolStateError("cannot rebuild a closed worker pool")
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self.rebuilds += 1
        self.open()

    @property
    def is_open(self) -> bool:
        """Whether worker processes are currently alive."""
        return self._pool is not None

    @property
    def is_closed(self) -> bool:
        """Whether the pool has been retired (close/terminate called)."""
        return self._closed

    @property
    def is_healthy(self) -> bool:
        """Best-effort liveness check of the underlying worker processes.

        ``False`` means at least one worker died (segfault, OOM kill) —
        the pool should be :meth:`rebuild`-t before more work is sent.
        """
        if self._pool is None:
            return not self._closed
        procs = getattr(self._pool, "_pool", None)
        if not procs:
            return True
        return all(proc.is_alive() for proc in procs)

    def ensure_healthy(self) -> bool:
        """Rebuild if any worker died; returns True when a rebuild happened."""
        if self._pool is not None and not self.is_healthy:
            self.rebuild()
            return True
        return False

    # -- execution ---------------------------------------------------------

    def starmap(self, func: Callable, args_list: Sequence[tuple]) -> list:
        """``starmap`` over the pool; falls back to serial when 1 worker."""
        args_list = list(args_list)
        func, args_list = self._under_fault_plan(func, args_list)
        if self.workers == 1 or len(args_list) <= 1:
            return [func(*args) for args in args_list]
        self.open()
        assert self._pool is not None
        return self._pool.starmap(func, args_list)

    def map(self, func: Callable, items: Iterable) -> list:
        """``map`` over the pool; falls back to serial when 1 worker."""
        return self.starmap(func, [(item,) for item in items])

    def apply_async(
        self, func: Callable, args: tuple = ()
    ) -> "mp.pool.AsyncResult":
        """Submit one work unit; returns the ``AsyncResult`` future.

        The resilience engine's submission primitive: per-unit results can
        be collected with a deadline (``.get(timeout)``) and retried
        individually.  Always runs on the pool (opening it on demand) so a
        hung unit cannot block the parent.
        """
        self.open()
        assert self._pool is not None
        kind = faults.draw("pool.worker", getattr(func, "__name__", "work-unit"))
        if kind is not None:
            return self._pool.apply_async(faults.faulty_call, (kind, func, *args))
        return self._pool.apply_async(func, args)

    def _under_fault_plan(
        self, func: Callable, args_list: list[tuple]
    ) -> tuple[Callable, list[tuple]]:
        """Wrap work units with pre-drawn fault directives (chaos runs only)."""
        directives = faults.draw_many(
            "pool.worker", len(args_list), getattr(func, "__name__", "work-unit")
        )
        if all(kind is None for kind in directives):
            return func, args_list
        wrapped = [
            (kind, func, *args) for kind, args in zip(directives, args_list)
        ]
        return faults.faulty_call, wrapped

    def _block_partials(
        self,
        span_name: str,
        func: Callable,
        total: int,
        shared_args: tuple,
        block_args: Callable[[int, int], tuple] | None,
    ) -> list:
        """Run ``func`` over a balanced row partition; partials in order.

        ``total`` rows are split into one block per worker.  When the
        parent is tracing, each unit runs under :func:`traced_work_unit`
        (same work, same order — the wrapper only ferries span trees
        home, so results are bit-for-bit the untraced ones).
        """
        blocks = balanced_blocks(total, self.workers)
        if block_args is None:
            args_list = [shared_args + (start, stop) for start, stop in blocks]
        else:
            args_list = [block_args(start, stop) for start, stop in blocks]
        tracer = current_tracer()
        if not tracer.enabled:
            return self.starmap(func, args_list)
        with tracer.span(
            span_name, blocks=len(blocks), workers=self.workers
        ) as parent:
            wrapped = [(func,) + tuple(args) for args in args_list]
            outputs = self.starmap(traced_work_unit, wrapped)
            partials = []
            for value, spans, counters, maxima in outputs:
                partials.append(value)
                tracer.adopt(spans, parent_id=parent.span_id)
                tracer.merge_counters(counters, maxima)
        return partials

    def sum_over_blocks(
        self,
        func: Callable,
        total: int,
        *,
        shared_args: tuple = (),
        block_args: Callable[[int, int], tuple] | None = None,
    ) -> Any:
        """Sum ``func(*shared_args, start, stop)`` over a row partition.

        The default call signature appends ``(start, stop)`` to
        ``shared_args``; pass ``block_args`` to customise.
        """
        partials = self._block_partials(
            "pool.sum_over_blocks", func, total, shared_args, block_args
        )
        result = partials[0]
        for part in partials[1:]:
            result = result + part
        return result

    def map_over_blocks(
        self,
        func: Callable,
        total: int,
        *,
        shared_args: tuple = (),
        block_args: Callable[[int, int], tuple] | None = None,
    ) -> list:
        """``func`` over a balanced row partition; partials in block order.

        Unlike :meth:`sum_over_blocks`, the caller owns the reduction —
        the fast-grid backends need the per-block row matrices back in
        global row order so they can apply the canonical strict fold
        (partition-invariant bits) instead of partition-shaped sums.
        """
        return self._block_partials(
            "pool.map_over_blocks", func, total, shared_args, block_args
        )


def parallel_sum(
    func: Callable,
    total: int,
    *,
    shared_args: tuple = (),
    workers: int | None = None,
) -> Any:
    """One-shot :meth:`WorkerPool.sum_over_blocks` with pool lifecycle.

    Convenience for single grid searches; optimisation loops should hold a
    :class:`WorkerPool` open across objective calls instead.
    """
    with WorkerPool(workers) as pool:
        return pool.sum_over_blocks(func, total, shared_args=shared_args)
