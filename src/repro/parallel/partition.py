"""Work partitioning for row-parallel O(n²) sweeps.

The leave-one-out work per observation is identical in cost (each row
touches all n neighbours), so a balanced partition is simply near-equal
contiguous blocks — contiguity matters because each worker then reads its
slice of ``x``/``y`` with unit stride (cache-friendliness idiom from the
optimisation guide).
"""

from __future__ import annotations

from repro.exceptions import ValidationError

__all__ = ["balanced_blocks"]


def balanced_blocks(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` near-equal ``(start, stop)`` blocks.

    The first ``total % parts`` blocks get one extra row.  Requests for
    more parts than rows collapse to one block per row (empty blocks are
    never returned).
    """
    if total < 0:
        raise ValidationError(f"total must be non-negative, got {total}")
    if parts <= 0:
        raise ValidationError(f"parts must be positive, got {parts}")
    parts = min(parts, total) or 1
    base, extra = divmod(total, parts)
    blocks: list[tuple[int, int]] = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        if size == 0:
            continue
        blocks.append((start, start + size))
        start += size
    return blocks
