"""Process-pool parallel substrate (the paper's "Multicore R" analogue)."""

from repro.parallel.pool import WorkerPool, available_workers, parallel_sum
from repro.parallel.partition import balanced_blocks

__all__ = ["WorkerPool", "available_workers", "balanced_blocks", "parallel_sum"]
