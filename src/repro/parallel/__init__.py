"""Process-pool parallel substrate (the paper's "Multicore R" analogue)."""

from repro.parallel.pool import WorkerPool, available_workers, parallel_sum
from repro.parallel.partition import balanced_blocks
from repro.parallel.shm import (
    SEGMENT_PREFIX,
    SharedArray,
    ShmWorkspace,
    attach_workspace,
    current_workspace,
    detach_workspace,
)

__all__ = [
    "SEGMENT_PREFIX",
    "SharedArray",
    "ShmWorkspace",
    "WorkerPool",
    "attach_workspace",
    "available_workers",
    "balanced_blocks",
    "current_workspace",
    "detach_workspace",
    "parallel_sum",
]
