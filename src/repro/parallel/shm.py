"""Zero-copy shared-memory workspaces for the blockwise worker pool.

The multicore backend ships its inputs to every worker by pickling them
into the ``fork`` snapshot and its per-block partials back through a
pipe.  At n = 20,000 that is harmless; at n = 100,000 with a large grid
the per-call serialisation starts to rival the sweep itself.  This
module removes both copies: the parent places X, Y, the bandwidth grid
(and, for the out-of-core backend, the per-row contribution matrix) in
POSIX shared memory (``multiprocessing.shared_memory``), workers attach
by *name* at fork time, and the only thing crossing the pipe per block
is a ``(start, stop)`` pair — O(1) IPC regardless of n.

Ownership is strictly parental:

* the **parent** creates every segment and is the only process that ever
  ``unlink``-s it (a workspace is a context manager, so the segments die
  with the sweep even on error paths);
* **workers** attach by name only.  They are forked *after* the parent
  creates the segments, so they inherit the parent's already-running
  ``multiprocessing.resource_tracker`` process: the attach-time
  re-registration is an idempotent set-add in that shared tracker, and
  the parent's single ``unlink`` retires the entry exactly once.  (On
  Python < 3.13 there is no ``track=False`` escape hatch; sending an
  explicit unregister from a worker would instead *remove* the parent's
  entry from the shared tracker and make the final unlink complain.)

Every segment name carries the :data:`SEGMENT_PREFIX` so the chaos suite
can assert that ``/dev/shm`` holds no ``repro-shm-*`` litter after a
fault-riddled run.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterator, Mapping

import numpy as np

from repro.exceptions import SharedSegmentError, ValidationError

__all__ = [
    "SEGMENT_PREFIX",
    "SegmentSpec",
    "SharedArray",
    "ShmWorkspace",
    "attach_workspace",
    "current_workspace",
    "detach_workspace",
]

#: Prefix of every segment this module creates (visible in ``/dev/shm``).
SEGMENT_PREFIX = "repro-shm"


@dataclass(frozen=True)
class SegmentSpec:
    """Picklable identity of one shared segment: name, shape, dtype."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


class SharedArray:
    """One named shared segment viewed as a numpy array."""

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        spec: SegmentSpec,
        *,
        owner: bool,
    ):
        self._segment = segment
        self.spec = spec
        self.owner = owner
        self.array: np.ndarray = np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=segment.buf
        )

    @classmethod
    def create(cls, tag: str, shape: tuple[int, ...], dtype: str) -> "SharedArray":
        """Allocate a fresh segment named ``repro-shm-<tag>-<nonce>``."""
        spec = SegmentSpec(name="", shape=tuple(int(d) for d in shape), dtype=dtype)
        if spec.nbytes <= 0:
            raise ValidationError(
                f"shared segment {tag!r} would be empty (shape {shape})"
            )
        for _ in range(8):
            name = f"{SEGMENT_PREFIX}-{tag}-{secrets.token_hex(4)}"
            try:
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=spec.nbytes
                )
            except FileExistsError:  # pragma: no cover - 2^32 nonce space
                continue
            return cls(segment, SegmentSpec(name, spec.shape, spec.dtype), owner=True)
        raise SharedSegmentError(
            f"could not allocate a unique segment for {tag!r}"
        )  # pragma: no cover

    @classmethod
    def attach(cls, spec: SegmentSpec) -> "SharedArray":
        """Attach to an existing segment by spec (worker side)."""
        try:
            segment = shared_memory.SharedMemory(name=spec.name)
        except FileNotFoundError as exc:
            raise SharedSegmentError(
                f"shared segment {spec.name!r} has vanished (unlinked or "
                "/dev/shm purged); the zero-copy substrate is gone"
            ) from exc
        return cls(segment, spec, owner=False)

    def close(self) -> None:
        """Drop this process's mapping; owners also unlink the name."""
        # Release the array's exported buffer before closing the mmap,
        # else SharedMemory.close() raises BufferError.
        self.array = np.ndarray(0, dtype=self.spec.dtype)
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - stray external view
            pass
        if self.owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self.owner = False


class ShmWorkspace:
    """A named set of shared arrays shipped to pool workers by manifest.

    The parent builds one with :meth:`create`, passes
    :meth:`manifest` through the pool initializer, and workers
    reconstruct their view with :func:`attach_workspace`.  Closing the
    parent's workspace unlinks every segment exactly once.
    """

    def __init__(self, arrays: dict[str, SharedArray], *, owner: bool):
        self._arrays = arrays
        self.owner = owner
        self._closed = False

    @classmethod
    def create(
        cls,
        inputs: Mapping[str, np.ndarray],
        outputs: Mapping[str, tuple[tuple[int, ...], str]] | None = None,
    ) -> "ShmWorkspace":
        """Copy ``inputs`` into fresh segments; allocate zeroed ``outputs``.

        ``outputs`` maps name -> (shape, dtype) for result buffers the
        workers fill in place (e.g. the n-by-k row-contribution matrix).
        """
        arrays: dict[str, SharedArray] = {}
        try:
            for tag, values in inputs.items():
                data = np.ascontiguousarray(values)
                shared = SharedArray.create(tag, data.shape, str(data.dtype))
                shared.array[...] = data
                arrays[tag] = shared
            for tag, (shape, dtype) in (outputs or {}).items():
                shared = SharedArray.create(tag, tuple(shape), dtype)
                shared.array[...] = 0
                arrays[tag] = shared
        except BaseException:
            for shared in arrays.values():
                shared.close()
            raise
        workspace = cls(arrays, owner=True)
        _set_current(workspace)
        return workspace

    @classmethod
    def attach(cls, manifest: Mapping[str, SegmentSpec]) -> "ShmWorkspace":
        """Worker-side reconstruction from a pickled manifest."""
        arrays: dict[str, SharedArray] = {}
        try:
            for tag, spec in manifest.items():
                arrays[tag] = SharedArray.attach(spec)
        except BaseException:
            for shared in arrays.values():
                shared.close()
            raise
        return cls(arrays, owner=False)

    def manifest(self) -> dict[str, SegmentSpec]:
        """The picklable segment directory workers attach from."""
        return {tag: shared.spec for tag, shared in self._arrays.items()}

    def __getitem__(self, tag: str) -> np.ndarray:
        if self._closed:
            raise SharedSegmentError(
                f"workspace is closed; segment {tag!r} is gone"
            )
        try:
            return self._arrays[tag].array
        except KeyError:
            raise SharedSegmentError(
                f"workspace has no segment named {tag!r}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._arrays)

    def close(self) -> None:
        """Close (and, for the owner, unlink) every segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for shared in self._arrays.values():
            shared.close()
        if _CURRENT is self:
            _set_current(None)

    def __enter__(self) -> "ShmWorkspace":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


# -- the process-current workspace ------------------------------------------
#
# Workers receive the manifest through the pool initializer, which runs
# once per fork (including rebuild() reforks) and parks the attached
# workspace here; the top-level block functions then find their arrays
# without any per-call argument traffic.  The parent parks its own
# (owning) workspace here too, so the single-worker serial fallback —
# which runs block functions in the parent process — resolves the same
# way.

_CURRENT: ShmWorkspace | None = None


def _set_current(workspace: ShmWorkspace | None) -> None:
    global _CURRENT
    _CURRENT = workspace


def attach_workspace(manifest: Mapping[str, SegmentSpec]) -> None:
    """Pool-initializer entry point: attach and install the workspace.

    Safe to run repeatedly (each :meth:`WorkerPool.rebuild` refork calls
    it again); a previously installed workspace is detached first.
    """
    detach_workspace()
    _set_current(ShmWorkspace.attach(manifest))


def current_workspace() -> ShmWorkspace:
    """The process's installed workspace; typed error when absent."""
    if _CURRENT is None or _CURRENT._closed:
        raise SharedSegmentError(
            "no shared-memory workspace is attached in this process"
        )
    return _CURRENT


def detach_workspace() -> None:
    """Drop the installed workspace, closing a worker-side attachment."""
    global _CURRENT
    if _CURRENT is not None and not _CURRENT.owner:
        _CURRENT.close()
    _CURRENT = None
