"""Deterministic, seeded fault injection.

The chaos harness for the whole library: a :class:`FaultInjector` holds a
set of :class:`FaultSpec` rules keyed by *site* — a short dotted string
naming an instrumented failure point — and decides, deterministically,
whether the ``i``-th event at that site fails.  Instrumented sites:

==================  =====================================================
``pool.worker``     a :class:`~repro.parallel.WorkerPool` work unit
                    (crash or timeout, raised inside the child process)
``gpusim.malloc``   a simulated ``cudaMalloc``
                    (:class:`~repro.exceptions.DeviceMemoryError`)
``gpusim.launch``   a simulated kernel launch
                    (:class:`~repro.exceptions.KernelExecutionError`)
``data.block``      a block of partial CV sums (NaN/Inf corruption,
                    applied by :func:`corrupt` in the resilient engine)
``shm.segment``     a shared-memory workspace attach/create
                    (:class:`~repro.exceptions.SharedSegmentError` — an
                    externally unlinked or purged ``/dev/shm`` segment)
``shm.worker``      a shared-memory pool work unit (crash or timeout,
                    raised inside the child like ``pool.worker``)
``bagged.subsample``  one subsample sweep of the bagged selector
                    (crash or timeout; the deterministic re-draw on
                    retry is what the bagged chaos suite exercises)
``compiled.jit``    one compiled-engine block (kind ``nojit`` raises
                    :class:`~repro.exceptions.CompiledUnavailableError`
                    — a mid-run JIT loss, degrading losslessly to the
                    byte-identical numpy/blocked fallback)
==================  =====================================================

Two trigger mechanisms, combinable per spec:

* ``at`` — explicit 0-based event indices, exactly reproducible;
* ``rate`` — per-event probability drawn from a generator seeded via
  :func:`repro.utils.rng.derive_seed_sequence` with the site name, so
  the Bernoulli sequence at each site is a pure function of the seed
  and the event order (NOT of wall clock, process id, or Python hash
  randomisation — string labels are folded in by crc32, not the
  per-process-salted ``hash()``).

Injection decisions are always drawn in the *parent* process (the pool
wraps work units with the decision already made), so a multi-process run
replays identically regardless of worker scheduling.

Usage::

    plan = FaultInjector([FaultSpec("pool.worker", "crash", at=(1,))], seed=7)
    with inject_faults(plan):
        result = select_bandwidth(x, y, backend="multicore", resilience=True)
    plan.log    # [FaultEvent(site='pool.worker', kind='crash', index=1, ...)]
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.exceptions import (
    BlockTimeoutError,
    CompiledUnavailableError,
    DeviceMemoryError,
    KernelExecutionError,
    SharedSegmentError,
    ValidationError,
    WorkerCrashError,
)
from repro.utils.rng import derive_seed_sequence

__all__ = [
    "FaultSpec",
    "FaultEvent",
    "FaultInjector",
    "inject_faults",
    "active_injector",
    "fire",
    "draw",
    "draw_many",
    "corrupt",
    "faulty_call",
    "KNOWN_SITES",
    "KNOWN_KINDS",
]

#: Instrumented failure points.
KNOWN_SITES = (
    "pool.worker",
    "gpusim.malloc",
    "gpusim.launch",
    "data.block",
    "shm.segment",
    "shm.worker",
    "bagged.subsample",
    "compiled.jit",
)

#: Fault kinds and the exception each one raises (``nan``/``inf`` corrupt
#: data instead of raising; detection is the engine's job).
KNOWN_KINDS = (
    "crash", "timeout", "oom", "launch", "unlink", "nan", "inf", "nojit",
)

_RAISING_KINDS: dict[str, Callable[[str], Exception]] = {
    "crash": lambda ctx: WorkerCrashError(f"injected worker crash at {ctx}"),
    "timeout": lambda ctx: BlockTimeoutError(f"injected block timeout at {ctx}"),
    "oom": lambda ctx: DeviceMemoryError(f"injected cudaMalloc failure at {ctx}"),
    "launch": lambda ctx: KernelExecutionError(
        f"injected kernel-launch failure at {ctx}"
    ),
    "unlink": lambda ctx: SharedSegmentError(
        f"injected shared-segment unlink at {ctx}"
    ),
    "nojit": lambda ctx: CompiledUnavailableError(
        f"injected JIT loss at {ctx}"
    ),
}


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: *what* fails, *where*, and *when*.

    Parameters
    ----------
    site:
        Instrumented site name (see :data:`KNOWN_SITES`).
    kind:
        Fault class (see :data:`KNOWN_KINDS`).
    at:
        Explicit 0-based event indices at that site that trigger the fault.
    rate:
        Additional per-event trigger probability in ``[0, 1]``, drawn from
        the injector's site-seeded generator.
    max_triggers:
        Stop firing after this many triggers (``None`` = unbounded).  A
        retried block *advances* the site counter, so a spec with
        ``at=(2,)`` fails the third event once and lets the retry through —
        exactly a transient fault.
    """

    site: str
    kind: str
    at: tuple[int, ...] = ()
    rate: float = 0.0
    max_triggers: int | None = None

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ValidationError(
                f"unknown fault site {self.site!r}; known: {', '.join(KNOWN_SITES)}"
            )
        if self.kind not in KNOWN_KINDS:
            raise ValidationError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(KNOWN_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValidationError(f"rate must be in [0, 1], got {self.rate}")
        object.__setattr__(self, "at", tuple(int(i) for i in self.at))


@dataclass(frozen=True)
class FaultEvent:
    """A fault that actually fired (one entry in :attr:`FaultInjector.log`)."""

    site: str
    kind: str
    index: int
    context: str = ""


def _site_seed(seed: int, site: str) -> np.random.SeedSequence:
    # Bit-compatible with the pre-consolidation SeedSequence([seed,
    # crc32(site)]) construction: recorded chaos schedules replay as-is.
    return derive_seed_sequence(seed, site)


class FaultInjector:
    """Replayable fault plan: ``(seed, site, event index) -> fault or None``.

    Each site keeps its own event counter and its own seeded generator, so
    adding a spec at one site never perturbs the trigger sequence at
    another.  Calling :meth:`reset` (or re-entering :func:`inject_faults`)
    rewinds every counter, replaying the identical fault sequence.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), *, seed: int = 0):
        self.seed = int(seed)
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.log: list[FaultEvent] = []
        self._counters: dict[str, int] = {}
        self._triggered: dict[int, int] = {}
        self._rngs: dict[str, np.random.Generator] = {}

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Rewind all counters/generators; the next run replays exactly."""
        self.log.clear()
        self._counters.clear()
        self._triggered.clear()
        self._rngs.clear()

    def _rng(self, site: str) -> np.random.Generator:
        if site not in self._rngs:
            self._rngs[site] = np.random.default_rng(_site_seed(self.seed, site))
        return self._rngs[site]

    # -- decisions ---------------------------------------------------------

    def draw(self, site: str, context: str = "") -> FaultSpec | None:
        """Consume one event at ``site``; return the spec that fires, if any.

        Exactly one uniform variate is drawn per event at a site with any
        rate-based spec, so the decision sequence is a pure function of
        ``(seed, site, event order)``.
        """
        index = self._counters.get(site, 0)
        self._counters[site] = index + 1
        site_specs = [s for s in self.specs if s.site == site]
        rated = any(s.rate > 0.0 for s in site_specs)
        u = float(self._rng(site).random()) if rated else 1.0
        for spec in site_specs:
            remaining = spec.max_triggers is None or (
                self._triggered.get(id(spec), 0) < spec.max_triggers
            )
            if not remaining:
                continue
            if index in spec.at or (spec.rate > 0.0 and u < spec.rate):
                self._triggered[id(spec)] = self._triggered.get(id(spec), 0) + 1
                self.log.append(FaultEvent(site, spec.kind, index, context))
                return spec
        return None

    def fire(self, site: str, context: str = "") -> None:
        """Raise the site's injected exception if this event triggers."""
        spec = self.draw(site, context)
        if spec is None:
            return
        make = _RAISING_KINDS.get(spec.kind)
        if make is None:
            raise ValidationError(
                f"fault kind {spec.kind!r} does not raise; use corrupt() "
                f"at site {site!r}"
            )
        raise make(context or site)

    def corrupt(self, site: str, values: np.ndarray, context: str = "") -> np.ndarray:
        """Return ``values``, NaN/Inf-poisoned when this event triggers."""
        spec = self.draw(site, context)
        if spec is None:
            return values
        poisoned = np.array(values, dtype=np.float64, copy=True)
        poison = np.nan if spec.kind != "inf" else np.inf
        if poisoned.size:
            # Deterministic position: spread the poison from a fixed slot.
            poisoned.flat[poisoned.size // 2] = poison
        return poisoned


# -- the process-global active plan ----------------------------------------

_ACTIVE: FaultInjector | None = None


def active_injector() -> FaultInjector | None:
    """The currently installed injector (``None`` outside chaos runs)."""
    return _ACTIVE


@contextmanager
def inject_faults(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` as the process-global fault plan.

    Counters are reset on entry so each ``with`` block replays the same
    fault sequence.  Nesting is rejected: two overlapping plans would
    interleave counters and destroy replayability.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise ValidationError("fault injection is already active; do not nest")
    injector.reset()
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None


# -- hook-site helpers (no-ops when no plan is active) ----------------------


def fire(site: str, context: str = "") -> None:
    """Hook call for raising sites (``gpusim.malloc``, ``gpusim.launch``)."""
    if _ACTIVE is not None:
        _ACTIVE.fire(site, context)


def draw(site: str, context: str = "") -> str | None:
    """Draw one decision; returns the fault kind or ``None``."""
    if _ACTIVE is None:
        return None
    spec = _ACTIVE.draw(site, context)
    return None if spec is None else spec.kind


def draw_many(site: str, count: int, context: str = "") -> list[str | None]:
    """Draw ``count`` decisions in order (one per pool work unit)."""
    if _ACTIVE is None:
        return [None] * count
    return [draw(site, f"{context}[{i}]") for i in range(count)]


def corrupt(site: str, values: np.ndarray, context: str = "") -> np.ndarray:
    """Hook call for the data-corruption site (``data.block``)."""
    if _ACTIVE is None:
        return values
    return _ACTIVE.corrupt(site, values, context)


def faulty_call(kind: str | None, func: Callable[..., Any], *args: Any) -> Any:
    """Execute ``func(*args)`` under a pre-drawn fault directive.

    Top-level (hence picklable) so :class:`~repro.parallel.WorkerPool` can
    ship it to a forked worker with the parent's decision baked in; the
    injected exception is raised *inside the child*, travelling back
    through the pool exactly like a real worker failure would.
    """
    if kind == "crash":
        raise WorkerCrashError("injected worker crash (simulated dead child)")
    if kind == "timeout":
        raise BlockTimeoutError("injected worker stall (simulated hung child)")
    return func(*args)
