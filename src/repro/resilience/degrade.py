"""Graceful backend degradation and the structured resilience report.

The degradation order mirrors the paper's own hardware story read
backwards: the CUDA program is fastest but dies at the 4 GB wall
(n > 20,000, ``REPRO_DEVICE_OOM``); the tiled out-of-core variant
(§V future work, :mod:`repro.cuda_port.tiled`) trades kernel launches for
an O(t·n) footprint; the multicore program survives any device fault but
can lose workers; the blockwise out-of-core sweep
(:mod:`repro.core.blockwise`) bounds host memory by an explicit budget;
and the sequential fast grid always completes.  So::

    gpusim  →  gpusim-tiled  →  multicore  →  blocked  →  numpy (serial)

The shared-memory variant sits on its own spur: ``blocked-shm`` degrades
first to ``blocked`` (same block partials, so the fallback is bit-exact)
when its POSIX segments vanish (``REPRO_SHM_SEGMENT``), then to the
serial terminal.  The compiled engine gets the same treatment: losing
the JIT (``REPRO_COMPILED_UNAVAILABLE`` — numba missing, disabled, or
chaos-killed) is structural, and the numpy/blocked fallbacks produce
byte-identical float64 curves, so ``compiled -> numpy`` and
``blocked-compiled -> blocked -> numpy`` are lossless spurs.

Decisions match on the stable ``REPRO_*`` error *codes* (see
:mod:`repro.exceptions`), not on class identity, so refactoring the
exception hierarchy cannot silently change fallback behaviour:

* **retryable** codes mark transient faults — retry the same backend
  (worker crash, block timeout, kernel-launch failure, corrupt block);
* **degradable** codes mark structural faults — no retry will help on
  this backend, move down the chain (device OOM, constant/shared memory
  exhaustion, bad launch configuration, unknown backend, retired pool);
* anything else (validation errors, degenerate data) is the caller's bug
  and propagates immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import error_code

__all__ = [
    "DEFAULT_FALLBACK_CHAIN",
    "RETRYABLE_CODES",
    "DEGRADABLE_CODES",
    "fallback_chain",
    "is_retryable",
    "is_degradable",
    "ResilienceReport",
]

#: Fast-but-fragile first, slow-but-sure last.
DEFAULT_FALLBACK_CHAIN: tuple[str, ...] = (
    "gpusim",
    "gpusim-tiled",
    "multicore",
    "blocked",
    "numpy",
)

#: Off-chain entry points that join the default chain mid-way: the
#: shared-memory sweep falls back to its process-local twin (identical
#: block partials — a lossless degradation) before the serial terminal.
_CHAIN_SPURS: dict[str, tuple[str, ...]] = {
    "blocked-shm": ("blocked-shm", "blocked", "numpy"),
    # The fleet coordinator folds the same block partials as `blocked`,
    # so losing the fleet degrades losslessly to the local sweep.
    "distributed": ("distributed", "blocked", "numpy"),
    # The compiled engine's float64 partials are byte-identical to the
    # numpy reference, so losing the JIT degrades losslessly too.
    "compiled": ("compiled", "numpy"),
    "blocked-compiled": ("blocked-compiled", "blocked", "numpy"),
}

#: Transient faults: retry on the same backend.
RETRYABLE_CODES = frozenset(
    {
        "REPRO_WORKER_CRASH",
        "REPRO_BLOCK_TIMEOUT",
        "REPRO_KERNEL_EXEC",
        "REPRO_DATA_CORRUPT",
        "REPRO_DIST_UNREACHABLE",
        "REPRO_DIST_LEASE_EXPIRED",
        "REPRO_DIST_CHECKSUM",
        "REPRO_SERVE_TIMEOUT",
    }
)

#: Structural faults: retries cannot help, degrade to the next backend.
DEGRADABLE_CODES = frozenset(
    {
        "REPRO_DEVICE_OOM",
        "REPRO_CONST_MEM",
        "REPRO_SHARED_MEM",
        "REPRO_LAUNCH_CONFIG",
        "REPRO_DEVICE_STATE",
        "REPRO_BACKEND",
        "REPRO_POOL_STATE",
        "REPRO_SHM_SEGMENT",
        "REPRO_RETRY_EXHAUSTED",
        "REPRO_DIST_FLEET_LOST",
        "REPRO_COMPILED_UNAVAILABLE",
    }
)


def is_retryable(exc: BaseException) -> bool:
    """Whether ``exc`` marks a transient fault worth retrying in place."""
    return error_code(exc) in RETRYABLE_CODES


def is_degradable(exc: BaseException) -> bool:
    """Whether ``exc`` justifies falling back to the next backend."""
    return error_code(exc) in DEGRADABLE_CODES


def fallback_chain(backend: str) -> tuple[str, ...]:
    """The degradation sequence starting from ``backend``.

    A backend on the default chain degrades along its suffix; spur
    backends (``blocked-shm``) join the chain at their own entry; any
    other backend (``python``, a user-registered one) falls straight back
    to the serial terminal, which cannot structurally fail.
    """
    if backend in _CHAIN_SPURS:
        return _CHAIN_SPURS[backend]
    if backend in DEFAULT_FALLBACK_CHAIN:
        idx = DEFAULT_FALLBACK_CHAIN.index(backend)
        return DEFAULT_FALLBACK_CHAIN[idx:]
    if backend == DEFAULT_FALLBACK_CHAIN[-1]:
        return (backend,)
    return (backend, DEFAULT_FALLBACK_CHAIN[-1])


@dataclass
class ResilienceReport:
    """What the resilient engine did to finish one selection.

    Attached to :attr:`repro.core.result.SelectionResult.resilience` so a
    caller can see, after the fact, every fault the run absorbed.
    """

    #: Requested backend and the one that finally produced the scores.
    backend_requested: str = ""
    backend_used: str = ""
    #: Every backend tried, in order, with its outcome ("ok" or a code).
    backend_attempts: list[dict[str, str]] = field(default_factory=list)
    #: Every fault absorbed: {"stage", "code", "error"} per event.
    faults: list[dict[str, str]] = field(default_factory=list)
    #: Total retry attempts across all blocks and backends.
    retries: int = 0
    #: Blocks recomputed after a fault (= failed block attempts).
    blocks_recomputed: int = 0
    #: Blocks replayed from a checkpoint instead of recomputed.
    blocks_resumed: int = 0
    #: Total row blocks in the sweep partition.
    blocks_total: int = 0
    #: Times a crashed/hung pool was torn down and reforked.
    pool_rebuilds: int = 0
    #: Checkpoint file in use, if any.
    checkpoint_path: str | None = None
    #: Backoff sleeps actually taken (seconds), in order.
    sleeps: list[float] = field(default_factory=list)

    # -- recording helpers (engine-internal) -------------------------------

    def record_fault(self, stage: str, exc: BaseException) -> None:
        """Append one absorbed fault."""
        self.faults.append(
            {
                "stage": stage,
                "code": error_code(exc) or type(exc).__name__,
                "error": str(exc),
            }
        )

    def record_attempt(self, backend: str, outcome: str) -> None:
        """Append one backend attempt ("ok" or the failing code)."""
        self.backend_attempts.append({"backend": backend, "outcome": outcome})

    @property
    def degraded(self) -> bool:
        """True when the scores came from a backend below the requested one."""
        return bool(self.backend_used) and self.backend_used != self.backend_requested

    @property
    def clean(self) -> bool:
        """True when the run saw no faults, retries, or degradation."""
        return not self.faults and not self.degraded and self.retries == 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly snapshot (for logs and bench artifacts)."""
        return {
            "backend_requested": self.backend_requested,
            "backend_used": self.backend_used,
            "backend_attempts": list(self.backend_attempts),
            "faults": list(self.faults),
            "retries": self.retries,
            "blocks_recomputed": self.blocks_recomputed,
            "blocks_resumed": self.blocks_resumed,
            "blocks_total": self.blocks_total,
            "pool_rebuilds": self.pool_rebuilds,
            "checkpoint_path": self.checkpoint_path,
            "sleeps": list(self.sleeps),
        }

    def summary(self) -> str:
        """Human-readable digest, styled after ``SelectionResult.summary``."""
        lines = [
            f"resilience: {self.backend_requested} -> {self.backend_used}"
            + (" (degraded)" if self.degraded else ""),
            f"  faults absorbed : {len(self.faults)}",
            f"  retries         : {self.retries}",
            f"  blocks          : {self.blocks_total} total, "
            f"{self.blocks_resumed} resumed, {self.blocks_recomputed} recomputed",
            f"  pool rebuilds   : {self.pool_rebuilds}",
        ]
        if self.checkpoint_path:
            lines.append(f"  checkpoint      : {self.checkpoint_path}")
        if self.backend_attempts:
            trail = ", ".join(
                f"{a['backend']}={a['outcome']}" for a in self.backend_attempts
            )
            lines.append(f"  attempts        : {trail}")
        return "\n".join(lines)
