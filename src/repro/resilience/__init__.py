"""Resilient execution layer: fault injection, retry, checkpoint, degrade.

The paper's pipeline is embarrassingly parallel per observation, which
makes it naturally fault-tolerant: any lost row block can be recomputed,
checkpointed, or shifted to a slower backend without changing the CV sums
at all.  This package exploits that:

* :mod:`~repro.resilience.faults` — deterministic, seeded fault injection
  (worker crashes/timeouts, simulated ``cudaMalloc``/kernel-launch
  failures, NaN block corruption) keyed by seed + site so failures replay
  exactly;
* :mod:`~repro.resilience.policy` — bounded retries with exponential
  backoff and deterministic jitter, plus per-block deadlines;
* :mod:`~repro.resilience.checkpoint` — resumable per-row-block partial
  sums for the O(n² log n) sweep (``resume=`` on the public selectors);
* :mod:`~repro.resilience.degrade` — the backend fallback chain
  ``gpusim → gpusim-tiled → multicore → numpy`` driven by stable
  ``REPRO_*`` error codes, reported in a :class:`ResilienceReport`;
* :mod:`~repro.resilience.engine` — the resilient execution engine that
  the public selectors call when ``resilience=`` is enabled.

This ``__init__`` stays light on purpose: :mod:`repro.parallel.pool`
imports the fault hooks at module load, so the engine (which imports the
pool back) is resolved lazily via PEP 562.
"""

from __future__ import annotations

from typing import Any

from repro.resilience.checkpoint import SweepCheckpoint, sweep_fingerprint
from repro.resilience.degrade import (
    DEFAULT_FALLBACK_CHAIN,
    DEGRADABLE_CODES,
    RETRYABLE_CODES,
    ResilienceReport,
    fallback_chain,
    is_degradable,
    is_retryable,
)
from repro.resilience.faults import (
    FaultEvent,
    FaultInjector,
    FaultSpec,
    active_injector,
    inject_faults,
)
from repro.resilience.policy import (
    RetryBudgetExceeded,
    RetryPolicy,
    run_with_retry,
)

__all__ = [
    "DEFAULT_FALLBACK_CHAIN",
    "DEGRADABLE_CODES",
    "RETRYABLE_CODES",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "ResilienceConfig",
    "ResilienceReport",
    "ResilientEngine",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "SweepCheckpoint",
    "active_injector",
    "fallback_chain",
    "inject_faults",
    "is_degradable",
    "is_retryable",
    "resilient_cv_scores",
    "run_with_retry",
    "sweep_fingerprint",
]

#: Engine names resolved lazily (the engine imports the worker pool,
#: which imports the fault hooks from this package at module load).
_ENGINE_EXPORTS = frozenset(
    {"ResilientEngine", "ResilienceConfig", "resilient_cv_scores", "default_block_rows"}
)


def __getattr__(name: str) -> Any:
    if name in _ENGINE_EXPORTS:
        from repro.resilience import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
