"""The resilient execution engine for the CV grid search.

The engine turns the paper's per-observation decomposition into a fault
boundary.  ``CV_lc`` over a bandwidth grid is ``(Σ_blocks s_b) / n``
where ``s_b`` is the k-vector of squared-residual sums over a row block —
so the engine runs the sweep *block by block*, and around every block it
places the full resilience stack:

1. **retry** — transient faults (worker crash, timeout, kernel-launch
   failure, corrupt result) recompute the block under the
   :class:`~repro.resilience.policy.RetryPolicy`, rebuilding a crashed
   pool transparently;
2. **checkpoint** — completed blocks stream to a
   :class:`~repro.resilience.checkpoint.SweepCheckpoint`, so a killed run
   resumes without recomputing them;
3. **degrade** — structural faults (device OOM, constant-memory
   exhaustion) walk the :func:`~repro.resilience.degrade.fallback_chain`
   to the next backend;
4. **verify** — every block's partial sums pass a finiteness check, so
   NaN/Inf corruption is recomputed instead of silently poisoning the
   whole CV curve.

Because blocks are accumulated in index order and the checkpoint stores
exact float64 sums, a run that absorbed faults (or resumed mid-sweep)
produces *bit-for-bit* the same CV scores as an undisturbed one — the
property the chaos suite in ``tests/resilience/`` asserts.

Backends fall into two execution shapes:

* **block-sweep** (``numpy``, ``multicore``, ``gpusim-tiled``,
  ``blocked``, ``blocked-shm``, ``compiled``, ``blocked-compiled``): the
  engine owns the row loop; the
  backend determines how one block is computed (in-process, on the pool,
  on the simulated device with tile-buffer residency, or on a
  shared-memory pool with budget-planned block sizes);
* **whole-call** (``gpusim`` monolithic, ``python``, dense kernels,
  user-registered backends): the backend is atomic; retry/degrade wrap
  the entire call and resume is unavailable (the monolithic CUDA program
  has no partial result to save — which is exactly why the tiled variant
  sits next in the chain).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.exceptions import (
    BlockTimeoutError,
    DataCorruptionError,
    ValidationError,
    error_code,
)
from repro.kernels import Kernel, get_kernel
from repro.obs.tracer import current_tracer
from repro.parallel.pool import WorkerPool, traced_work_unit
from repro.utils.validation import check_paired_samples, ensure_bandwidths
from repro.resilience import faults
from repro.resilience.checkpoint import SweepCheckpoint, sweep_fingerprint
from repro.resilience.degrade import (
    ResilienceReport,
    fallback_chain,
    is_degradable,
    is_retryable,
)
from repro.resilience.policy import (
    RetryBudgetExceeded,
    RetryPolicy,
    run_with_retry,
)

__all__ = [
    "ResilienceConfig",
    "ResilientEngine",
    "default_block_rows",
    "resilient_cv_scores",
]

#: Codes after which a pool must be reforked before retrying.
_POOL_FATAL_CODES = frozenset({"REPRO_WORKER_CRASH", "REPRO_BLOCK_TIMEOUT"})

#: Backends the engine can drive block-by-block (resumable).
_BLOCK_BACKENDS = frozenset(
    {
        "numpy",
        "multicore",
        "gpusim-tiled",
        "blocked",
        "blocked-shm",
        "compiled",
        "blocked-compiled",
    }
)

#: The blockwise family sizes its blocks from the memory-budget planner.
_BUDGETED_BACKENDS = frozenset({"blocked", "blocked-shm", "blocked-compiled"})


def default_block_rows(n: int) -> int:
    """Deterministic checkpoint granularity: ≤16 blocks, ≥64 rows each.

    A function of ``n`` alone — NOT of the worker count or machine — so a
    checkpoint written on one host resumes on any other.
    """
    if n <= 0:
        raise ValidationError(f"n must be positive, got {n}")
    return max(64, -(-n // 16))


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning for one resilient selection.

    Parameters
    ----------
    policy:
        Retry/backoff/deadline policy (see :class:`RetryPolicy`).
    fallback:
        Walk the backend degradation chain on structural faults; when
        False the requested backend is the only one tried.
    checkpoint:
        Path for the resumable sweep checkpoint (``None`` = in-memory
        only).  The same path works for writing and resuming.
    keep_checkpoint:
        Keep the checkpoint file after a successful sweep (default:
        deleted, so stale sums can never leak into a later run).
    block_rows:
        Row-block size (default :func:`default_block_rows`).
    flush_every:
        Checkpoint write frequency, in completed blocks.
    sleep:
        Injectable sleeper for the backoff (tests pass a no-op).
    """

    policy: RetryPolicy = RetryPolicy()
    fallback: bool = True
    checkpoint: str | Path | None = None
    keep_checkpoint: bool = False
    block_rows: int | None = None
    flush_every: int = 1
    sleep: Callable[[float], None] | None = None

    def __post_init__(self) -> None:
        if self.block_rows is not None and self.block_rows <= 0:
            raise ValidationError(
                f"block_rows must be positive, got {self.block_rows}"
            )

    @classmethod
    def coerce(
        cls,
        value: "ResilienceConfig | bool | None",
        *,
        resume: str | Path | None = None,
    ) -> "ResilienceConfig | None":
        """Normalise the public ``resilience=`` argument.

        ``True`` means defaults; ``None``/``False`` means disabled —
        unless ``resume`` is given, which enables resilience on its own.
        """
        if isinstance(value, cls):
            cfg: ResilienceConfig | None = value
        elif value is True:
            cfg = cls()
        elif value is None or value is False:
            cfg = None
        else:
            raise ValidationError(
                f"resilience must be a ResilienceConfig, True, or None; "
                f"got {value!r}"
            )
        if resume is not None:
            cfg = replace(cfg if cfg is not None else cls(), checkpoint=resume)
        return cfg


class ResilientEngine:
    """Drives one (or more) grid sweeps under the resilience stack.

    One engine accumulates one :class:`ResilienceReport` across every
    sweep it runs — a selector with refinement rounds reuses the engine so
    the report covers the whole selection.
    """

    def __init__(self, config: ResilienceConfig | None = None):
        self.config = config if config is not None else ResilienceConfig()
        self.report = ResilienceReport()
        self._jitter_rng = self.config.policy.jitter_rng()

    # -- public ------------------------------------------------------------

    def cv_scores(
        self,
        x: np.ndarray,
        y: np.ndarray,
        bandwidths: np.ndarray,
        kernel: str | Kernel,
        *,
        backend: str = "numpy",
        backend_options: dict[str, Any] | None = None,
        checkpoint_enabled: bool = True,
    ) -> np.ndarray:
        """CV scores for the grid, surviving whatever faults it can.

        Walks the fallback chain from ``backend``; within each candidate,
        block faults are retried per the policy.  Raises only when every
        eligible backend failed structurally or a fault was not absorbable
        (validation errors, retry budget exhausted on the terminal
        backend).
        """
        kern = get_kernel(kernel)
        x, y = check_paired_samples(x, y)
        grid = ensure_bandwidths(bandwidths)
        options = dict(backend_options or {})
        if not self.report.backend_requested:
            self.report.backend_requested = backend
        chain = fallback_chain(backend) if self.config.fallback else (backend,)
        tracer = current_tracer()

        with tracer.span(
            "resilient-sweep",
            backend=backend,
            fallback=self.config.fallback,
            chain=len(chain),
        ):
            last_exc: BaseException | None = None
            for position, candidate in enumerate(chain):
                try:
                    with tracer.span(
                        "candidate", backend=candidate, position=position
                    ):
                        scores = self._run_candidate(
                            candidate,
                            x,
                            y,
                            grid,
                            kern,
                            options,
                            checkpoint_enabled=checkpoint_enabled,
                            degraded=position > 0,
                        )
                except Exception as exc:
                    self.report.record_attempt(
                        candidate, error_code(exc) or type(exc).__name__
                    )
                    self.report.record_fault(f"backend:{candidate}", exc)
                    if is_degradable(exc) and position < len(chain) - 1:
                        tracer.counter("resilience.degraded")
                        last_exc = exc
                        continue
                    raise
                self.report.record_attempt(candidate, "ok")
                self.report.backend_used = candidate
                return scores
        raise last_exc if last_exc is not None else AssertionError("empty chain")

    # -- candidate dispatch ------------------------------------------------

    def _run_candidate(
        self,
        candidate: str,
        x: np.ndarray,
        y: np.ndarray,
        grid: np.ndarray,
        kern: Kernel,
        options: dict[str, Any],
        *,
        checkpoint_enabled: bool,
        degraded: bool,
    ) -> np.ndarray:
        if candidate in _BLOCK_BACKENDS and kern.supports_fast_grid:
            return self._block_sweep(
                candidate,
                x,
                y,
                grid,
                kern,
                options,
                checkpoint_enabled=checkpoint_enabled,
                degraded=degraded,
            )
        return self._whole_call(candidate, x, y, grid, kern, options)

    def _whole_call(
        self,
        candidate: str,
        x: np.ndarray,
        y: np.ndarray,
        grid: np.ndarray,
        kern: Kernel,
        options: dict[str, Any],
    ) -> np.ndarray:
        from repro.core.backends import get_backend

        backend_fn = get_backend(candidate)

        def attempt() -> np.ndarray:
            raw = np.asarray(
                backend_fn(x, y, grid, kern, **options), dtype=np.float64
            )
            checked = faults.corrupt("data.block", raw, f"{candidate}:scores")
            if not np.all(np.isfinite(checked)):
                raise DataCorruptionError(
                    f"non-finite CV scores from backend {candidate!r}"
                )
            return checked

        def on_retry(exc: BaseException, attempt_no: int) -> None:
            self.report.record_fault(f"{candidate}:whole-call", exc)
            self.report.retries += 1

        return run_with_retry(
            attempt,
            policy=self.config.policy,
            retryable=is_retryable,
            on_retry=on_retry,
            sleep=self._sleep,
            rng=self._jitter_rng,
            label=f"backend {candidate!r}",
        )

    # -- the block sweep ---------------------------------------------------

    def _block_sweep(
        self,
        candidate: str,
        x: np.ndarray,
        y: np.ndarray,
        grid: np.ndarray,
        kern: Kernel,
        options: dict[str, Any],
        *,
        checkpoint_enabled: bool,
        degraded: bool,
    ) -> np.ndarray:
        n = int(x.shape[0])
        k = int(grid.shape[0])
        policy = self.config.policy
        dtype = str(
            options.get(
                "dtype", "float32" if candidate == "gpusim-tiled" else "float64"
            )
        )
        block_rows = self.config.block_rows
        if block_rows is None and candidate in _BUDGETED_BACKENDS:
            from repro.core.blockwise import plan_for

            # Budget-planned granularity, capped at the checkpoint default
            # so a roomy budget never coarsens resumability.  blocked and
            # blocked-shm share the plan (output_matrix is irrelevant here:
            # the engine collects k-vector partials, never the row matrix),
            # which is what makes shm -> blocked degradation bit-exact.
            plan = plan_for(
                n,
                k,
                kern.name,
                dtype=dtype,
                memory_budget=options.get("memory_budget"),
            )
            block_rows = min(default_block_rows(n), plan.block_rows)
        elif block_rows is None:
            block_rows = default_block_rows(n)
        if candidate in ("compiled", "blocked-compiled"):
            from repro.compiled.api import warmup as compiled_warmup

            # Compile (or fallback-warm) before the wave loop, so JIT
            # latency lands in the `compiled.jit_warmup` span rather than
            # inflating the first block's retry deadline.
            compiled_warmup(dtype)
        blocks = [(s, min(s + block_rows, n)) for s in range(0, n, block_rows)]
        self.report.blocks_total += len(blocks)

        ckpt_path = self.config.checkpoint if checkpoint_enabled else None
        ckpt = SweepCheckpoint.open(
            ckpt_path,
            fingerprint=sweep_fingerprint(x, y, grid, kern.name, dtype, block_rows),
            n=n,
            k=k,
            block_rows=block_rows,
            flush_every=self.config.flush_every,
            # A user-pointed checkpoint for *this* configuration must match
            # or fail loudly; once degraded, the old backend's checkpoint
            # is simply a different sweep — restart it.
            on_mismatch="restart" if degraded else "raise",
        )
        if ckpt.path is not None:
            self.report.checkpoint_path = str(ckpt.path)

        pool: WorkerPool | None = None
        owns_pool = False
        workspace = None
        if candidate == "multicore":
            pool = options.get("pool")
            if pool is None:
                pool = WorkerPool(options.get("workers"))
                owns_pool = True
        elif candidate == "blocked-shm":
            from repro.parallel import shm as shm_mod

            # An unlinked/purged segment surfaces here as a structural
            # REPRO_SHM_SEGMENT fault, degrading to the bit-identical
            # process-local "blocked" candidate.
            faults.fire("shm.segment", f"workspace[n={n},k={k}]")
            workspace = shm_mod.ShmWorkspace.create(
                inputs={"x": x, "y": y, "grid": grid}
            )
            # The initializer (and its manifest) is stored on the pool, so
            # a rebuild() after a worker death re-attaches the same
            # segments in the fresh workers.
            pool = WorkerPool(
                options.get("workers"),
                initializer=shm_mod.attach_workspace,
                initargs=(workspace.manifest(),),
            )
            owns_pool = True
        try:
            try:
                results = self._sweep_blocks(
                    candidate, x, y, grid, kern, options, blocks, dtype, ckpt,
                    pool,
                )
            except BaseException:
                ckpt.flush()  # persist whatever completed before the failure
                if owns_pool and pool is not None:
                    pool.terminate()
                raise
            if owns_pool and pool is not None:
                pool.close()
        finally:
            if workspace is not None:
                workspace.close()
        ckpt.flush()
        total = np.zeros(k, dtype=np.float64)
        for start in sorted(results):
            total += results[start]
        if not self.config.keep_checkpoint:
            ckpt.discard()
        return total / n

    def _sweep_blocks(
        self,
        candidate: str,
        x: np.ndarray,
        y: np.ndarray,
        grid: np.ndarray,
        kern: Kernel,
        options: dict[str, Any],
        blocks: list[tuple[int, int]],
        dtype: str,
        ckpt: SweepCheckpoint,
        pool: WorkerPool | None,
    ) -> dict[int, np.ndarray]:
        """Wave-based block loop: submit pending, collect, retry failures."""
        policy = self.config.policy
        tracer = current_tracer()
        results: dict[int, np.ndarray] = {}
        pending: list[tuple[int, int]] = []
        for start, stop in blocks:
            if ckpt.has_block(start):
                results[start] = ckpt.get_block(start)
                self.report.blocks_resumed += 1
            else:
                pending.append((start, stop))
        if self.report.blocks_resumed:
            tracer.counter(
                "resilience.blocks_resumed", float(self.report.blocks_resumed)
            )

        attempts: dict[int, int] = {start: 0 for start, _ in pending}
        wave_no = 0
        while pending:
            with tracer.span(
                "wave", index=wave_no, backend=candidate, blocks=len(pending)
            ):
                wave = [
                    (start, stop, self._submit_block(
                        candidate, x, y, grid, kern, options, start, stop,
                        dtype, pool,
                    ))
                    for start, stop in pending
                ]
                failed: list[tuple[int, int]] = []
                needs_rebuild = False
                for start, stop, collect in wave:
                    label = f"{candidate}:rows[{start}:{stop})"
                    try:
                        sums = collect()
                        sums = faults.corrupt("data.block", sums, label)
                        if not np.all(np.isfinite(sums)):
                            raise DataCorruptionError(
                                f"non-finite partial sums in {label}"
                            )
                    except Exception as exc:
                        if not is_retryable(exc):
                            raise
                        attempts[start] += 1
                        self.report.record_fault(label, exc)
                        self.report.blocks_recomputed += 1
                        if attempts[start] > policy.max_retries:
                            raise RetryBudgetExceeded(
                                f"block {label} failed {attempts[start]} "
                                f"time(s); last error: {exc}"
                            ) from exc
                        needs_rebuild |= error_code(exc) in _POOL_FATAL_CODES
                        failed.append((start, stop))
                    else:
                        results[start] = sums
                        ckpt.record_block(start, sums)
                if failed:
                    self.report.retries += len(failed)
                    tracer.counter("resilience.retries", float(len(failed)))
                    if needs_rebuild and pool is not None:
                        pool.rebuild()
                        self.report.pool_rebuilds += 1
                        tracer.counter("resilience.pool_rebuilds")
                    round_no = max(attempts[start] for start, _ in failed)
                    pause = policy.delay(round_no, self._jitter_rng)
                    if pause > 0.0:
                        self._sleep(pause)
                pending = failed
            wave_no += 1
        return results

    def _submit_block(
        self,
        candidate: str,
        x: np.ndarray,
        y: np.ndarray,
        grid: np.ndarray,
        kern: Kernel,
        options: dict[str, Any],
        start: int,
        stop: int,
        dtype: str,
        pool: WorkerPool | None,
    ) -> Callable[[], np.ndarray]:
        """Start one block computation; returns its collector thunk.

        Pool submissions happen eagerly (so a wave actually runs in
        parallel); serial backends compute inside the collector.
        """
        from repro.core.fastgrid import fastgrid_block_sums

        if candidate == "multicore":
            assert pool is not None
            block_args = (x, y, grid, kern.name, start, stop, dtype)
            return self._pool_collector(
                pool, fastgrid_block_sums, block_args, start, stop
            )

        if candidate == "blocked-shm":
            from repro.core.blockwise import shm_block_sums

            assert pool is not None
            # Parent-drawn worker-death directive for the shm pool: the
            # injected crash/timeout is raised inside the child, so retry
            # and pool-rebuild behave exactly as for a real dead worker.
            kind = faults.draw("shm.worker", f"rows[{start}:{stop})")
            block_args = (kern.name, start, stop, dtype)
            return self._pool_collector(
                pool, shm_block_sums, block_args, start, stop, fault_kind=kind
            )

        if candidate == "gpusim-tiled":
            return lambda: self._tiled_block(
                x, y, grid, kern, options, start, stop
            )

        if candidate in ("compiled", "blocked-compiled"):
            from repro.compiled.api import compiled_block_sums

            # Identical float64 partials to the numpy unit — and the sweep
            # fingerprint carries no backend, so blocks checkpointed here
            # resume bit-for-bit under the degraded numpy/blocked
            # candidate (and vice versa).
            return lambda: np.asarray(
                compiled_block_sums(
                    x, y, grid, kern.name, start, stop, dtype
                ),
                dtype=np.float64,
            )

        return lambda: np.asarray(
            fastgrid_block_sums(x, y, grid, kern.name, start, stop, dtype),
            dtype=np.float64,
        )

    def _pool_collector(
        self,
        pool: WorkerPool,
        func: Callable[..., Any],
        block_args: tuple,
        start: int,
        stop: int,
        *,
        fault_kind: str | None = None,
    ) -> Callable[[], np.ndarray]:
        """Submit one block to a pool; return its deadline-ed collector."""
        traced = current_tracer().enabled
        unit: Callable[..., Any] = func
        unit_args: tuple = block_args
        if traced:
            unit, unit_args = traced_work_unit, (func,) + block_args
        if fault_kind is not None:
            unit, unit_args = faults.faulty_call, (fault_kind, unit) + unit_args
        future = pool.apply_async(unit, unit_args)
        timeout = self.config.policy.block_timeout

        def collect_pool() -> np.ndarray:
            tracer = current_tracer()
            with tracer.span("block-collect", start=start, stop=stop) as cspan:
                try:
                    value = future.get(timeout)
                except multiprocessing.TimeoutError:
                    raise BlockTimeoutError(
                        f"rows[{start}:{stop}) missed its {timeout}s deadline"
                    ) from None
                if traced and tracer.enabled:
                    value, spans, counters, maxima = value
                    tracer.adopt(spans, parent_id=cspan.span_id)
                    tracer.merge_counters(counters, maxima)
            return np.asarray(value, dtype=np.float64)

        return collect_pool

    def _tiled_block(
        self,
        x: np.ndarray,
        y: np.ndarray,
        grid: np.ndarray,
        kern: Kernel,
        options: dict[str, Any],
        start: int,
        stop: int,
    ) -> np.ndarray:
        """One tile on the simulated device: reserve, compute, free.

        Device residency is the tiled program's: two t×n float32 tile
        buffers charged against capacity (so an injected or genuine
        ``cudaMalloc`` failure surfaces here), with the arithmetic carried
        out by the float32 block sums — the same summations the tiled
        CUDA kernel performs.
        """
        from repro.core.fastgrid import fastgrid_block_sums
        from repro.gpusim.device import get_device
        from repro.gpusim.memory import GlobalMemory

        device = get_device(options.get("device"))
        gmem = GlobalMemory(device)
        n = int(x.shape[0])
        t = stop - start
        try:
            gmem.reserve((t, n), np.float32, label="absdiff-tile")
            gmem.reserve((t, n), np.float32, label="y-tile")
            sums = fastgrid_block_sums(
                x, y, grid, kern.name, start, stop, "float32"
            )
        finally:
            gmem.free_all()
        return np.asarray(sums, dtype=np.float64)

    # -- plumbing ----------------------------------------------------------

    def _sleep(self, seconds: float) -> None:
        self.report.sleeps.append(float(seconds))
        sleeper = self.config.sleep if self.config.sleep is not None else time.sleep
        sleeper(seconds)


def resilient_cv_scores(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str | Kernel = "epanechnikov",
    *,
    backend: str = "numpy",
    config: ResilienceConfig | None = None,
    backend_options: dict[str, Any] | None = None,
) -> tuple[np.ndarray, ResilienceReport]:
    """One-shot resilient sweep; returns ``(scores, report)``."""
    engine = ResilientEngine(config)
    scores = engine.cv_scores(
        x, y, bandwidths, kernel, backend=backend, backend_options=backend_options
    )
    return scores, engine.report


def resilient_parallel_sum(
    pool: WorkerPool,
    func: Callable[..., Any],
    total: int,
    *,
    shared_args: tuple = (),
    policy: RetryPolicy,
    report: ResilienceReport,
    sleep: Callable[[float], None] | None = None,
    rng: np.random.Generator | None = None,
) -> Any:
    """:func:`WorkerPool.sum_over_blocks` under retry + pool rebuild.

    The numerical optimiser's objective calls this instead of the bare
    pool method, so a crashed or hung worker costs one retry rather than
    the whole optimisation.
    """

    def attempt() -> Any:
        return pool.sum_over_blocks(func, total, shared_args=shared_args)

    def on_retry(exc: BaseException, attempt_no: int) -> None:
        report.record_fault("objective", exc)
        report.retries += 1
        if error_code(exc) in _POOL_FATAL_CODES:
            pool.rebuild()
            report.pool_rebuilds += 1

    return run_with_retry(
        attempt,
        policy=policy,
        retryable=is_retryable,
        on_retry=on_retry,
        sleep=sleep,
        rng=rng,
        label="parallel objective evaluation",
    )
