"""Retry policy: bounded retries, exponential backoff, deterministic jitter.

The policy is *pure data plus arithmetic*: given an attempt number it
produces a delay, and given a seed the jitter sequence is exactly
reproducible — chaos tests can assert not only that a run survived its
faults but that it slept the same schedule both times.  The actual
``sleep`` is injectable so tests run in microseconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, TypeVar

import numpy as np

from repro.exceptions import ReproError, ValidationError, error_code
from repro.utils.rng import derive_rng

__all__ = ["RetryPolicy", "RetryBudgetExceeded", "run_with_retry", "describe_policy"]

T = TypeVar("T")


class RetryBudgetExceeded(ReproError):
    """Every retry of a work unit failed; carries the last error chained."""

    code = "REPRO_RETRY_EXHAUSTED"


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for transient faults.

    Parameters
    ----------
    max_retries:
        Retries *after* the first attempt (0 = fail fast).
    base_delay:
        Delay before the first retry, in seconds.
    multiplier:
        Exponential growth factor between consecutive retries.
    max_delay:
        Ceiling on any single delay.
    jitter:
        Fractional jitter: the delay is scaled by ``1 + jitter·u`` with
        ``u ~ U[0, 1)`` from a generator seeded by ``seed`` — decorrelates
        retry storms across workers while staying replayable.
    block_timeout:
        Per-block deadline (seconds) for pool submissions; ``None``
        disables the deadline.
    seed:
        Seed of the jitter sequence.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    block_timeout: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0.0 or self.max_delay < 0.0:
            raise ValidationError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValidationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.jitter < 0.0:
            raise ValidationError(f"jitter must be >= 0, got {self.jitter}")
        if self.block_timeout is not None and self.block_timeout <= 0.0:
            raise ValidationError(
                f"block_timeout must be positive, got {self.block_timeout}"
            )

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retry ``attempt`` (1-based), jittered from ``rng``."""
        if attempt < 1:
            raise ValidationError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        scale = 1.0 + self.jitter * float(rng.random()) if self.jitter > 0.0 else 1.0
        return raw * scale

    def delays(self) -> list[float]:
        """The full (deterministic) backoff schedule for one work unit."""
        rng = self.jitter_rng()
        return [self.delay(a, rng) for a in range(1, self.max_retries + 1)]

    def jitter_rng(self) -> np.random.Generator:
        """A fresh generator positioned at the start of the jitter sequence."""
        # Bit-compatible with the pre-consolidation SeedSequence([seed,
        # 0x5E7B]): recorded backoff schedules replay unchanged.
        return derive_rng(self.seed, 0x5E7B)


@dataclass
class _RetryState:
    """Mutable bookkeeping shared by one :func:`run_with_retry` call."""

    attempts: int = 0
    retries: int = 0
    slept: list[float] = field(default_factory=list)


def run_with_retry(
    func: Callable[[], T],
    *,
    policy: RetryPolicy,
    retryable: Callable[[BaseException], bool],
    on_retry: Callable[[BaseException, int], None] | None = None,
    sleep: Callable[[float], None] | None = None,
    rng: np.random.Generator | None = None,
    label: str = "work unit",
) -> T:
    """Call ``func`` until it succeeds or the retry budget is spent.

    ``retryable`` classifies exceptions (typically by their ``REPRO_*``
    code); non-retryable errors propagate immediately.  ``on_retry`` is
    invoked before each backoff with the failure and the 1-based attempt
    number — the resilient engine uses it to record fault events and to
    rebuild a crashed pool.  When the budget is exhausted the last error
    is re-raised wrapped in :class:`RetryBudgetExceeded` so callers (and
    the degrade chain) can distinguish "kept failing" from "failed once".
    """
    do_sleep = sleep if sleep is not None else time.sleep
    jitter_rng = rng if rng is not None else policy.jitter_rng()
    attempt = 0
    while True:
        try:
            return func()
        except Exception as exc:  # classified and re-raised below
            if not retryable(exc):
                raise
            attempt += 1
            if attempt > policy.max_retries:
                code = error_code(exc) or type(exc).__name__
                raise RetryBudgetExceeded(
                    f"{label} failed {attempt} time(s); last error {code}: {exc}"
                ) from exc
            if on_retry is not None:
                on_retry(exc, attempt)
            pause = policy.delay(attempt, jitter_rng)
            if pause > 0.0:
                do_sleep(pause)


def describe_policy(policy: RetryPolicy) -> dict[str, Any]:
    """JSON-friendly snapshot of a policy (for reports and logs)."""
    return {
        "max_retries": policy.max_retries,
        "base_delay": policy.base_delay,
        "multiplier": policy.multiplier,
        "max_delay": policy.max_delay,
        "jitter": policy.jitter,
        "block_timeout": policy.block_timeout,
        "seed": policy.seed,
    }
