"""Checkpoint/resume for the O(n² log n) grid search.

The fast grid search decomposes into per-observation squared-residual
sums: the CV curve is ``(Σ_blocks block_sums) / n`` over any partition of
the rows.  That makes the sweep checkpointable at *row-block*
granularity: after each completed block the k-vector of partial sums is
appended to an on-disk checkpoint, and a re-run with ``resume=`` replays
the finished blocks from disk instead of recomputing them.

Integrity is fingerprint-based: the checkpoint stores a SHA-256 over the
inputs that determine the partial sums — ``x``, ``y``, the grid, the
kernel name, the arithmetic dtype, and the block size.  A resume against
different inputs raises :class:`~repro.exceptions.CheckpointError` rather
than silently splicing incompatible sums.  Because the stored values are
the *exact* float64 block sums and the engine always accumulates blocks
in index order, a resumed run is bit-for-bit identical to an unfaulted
one.

Writes are atomic (temp file + ``os.replace``) so a crash mid-write
leaves the previous checkpoint intact — which is the whole point.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.exceptions import CheckpointError, ValidationError

__all__ = ["SweepCheckpoint", "sweep_fingerprint"]

_FORMAT_VERSION = 1


def sweep_fingerprint(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel_name: str,
    dtype: str,
    block_rows: int,
) -> str:
    """SHA-256 hex digest of everything that determines the block sums."""
    digest = hashlib.sha256()
    digest.update(f"v{_FORMAT_VERSION}|{kernel_name}|{dtype}|{block_rows}|".encode())
    for arr in (x, y, bandwidths):
        a = np.ascontiguousarray(np.asarray(arr, dtype=np.float64))
        digest.update(str(a.shape).encode())
        digest.update(a.tobytes())
    return digest.hexdigest()


class SweepCheckpoint:
    """Resumable store of completed row-block partial sums.

    One instance corresponds to one sweep configuration (fingerprint).
    ``record_block`` persists each completed block; ``get_block`` replays
    one on resume.  ``path=None`` gives an in-memory checkpoint — the
    engine then keeps uniform code paths with zero I/O.
    """

    def __init__(
        self,
        path: str | Path | None,
        *,
        fingerprint: str,
        n: int,
        k: int,
        block_rows: int,
        flush_every: int = 1,
    ):
        if flush_every < 1:
            raise ValidationError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path) if path is not None else None
        self.fingerprint = fingerprint
        self.n = int(n)
        self.k = int(k)
        self.block_rows = int(block_rows)
        self.flush_every = int(flush_every)
        self._blocks: dict[int, np.ndarray] = {}
        self._resumed_starts: frozenset[int] = frozenset()
        self._dirty = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str | Path | None,
        *,
        fingerprint: str,
        n: int,
        k: int,
        block_rows: int,
        flush_every: int = 1,
        on_mismatch: str = "raise",
    ) -> "SweepCheckpoint":
        """Load a matching checkpoint from ``path``, or start a fresh one.

        A file that exists but was written for different inputs raises
        :class:`CheckpointError` — resuming across datasets would corrupt
        the CV sums undetectably.  ``on_mismatch="restart"`` instead
        starts a fresh (empty) checkpoint that will overwrite the stale
        file on the next flush — the engine uses this after a backend
        degradation, where the previous backend's checkpoint is simply a
        different sweep, not user error.
        """
        if on_mismatch not in ("raise", "restart"):
            raise ValidationError(
                f"on_mismatch must be 'raise' or 'restart', got {on_mismatch!r}"
            )
        ckpt = cls(
            path,
            fingerprint=fingerprint,
            n=n,
            k=k,
            block_rows=block_rows,
            flush_every=flush_every,
        )
        if path is not None and Path(path).exists():
            try:
                ckpt._load()
            except CheckpointError:
                if on_mismatch == "raise":
                    raise
                ckpt._blocks = {}
                ckpt._resumed_starts = frozenset()
        return ckpt

    def _load(self) -> None:
        assert self.path is not None
        try:
            with np.load(self.path, allow_pickle=False) as payload:
                stored_fp = str(payload["fingerprint"])
                starts = np.asarray(payload["starts"], dtype=np.int64)
                sums = np.asarray(payload["sums"], dtype=np.float64)
        except (OSError, KeyError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint {self.path} is unreadable: {exc}"
            ) from exc
        if stored_fp != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {self.path} belongs to a different sweep "
                f"(stored fingerprint {stored_fp[:12]}..., expected "
                f"{self.fingerprint[:12]}...); delete it or point --resume "
                "elsewhere"
            )
        if sums.ndim != 2 or sums.shape[0] != starts.shape[0] or sums.shape[1] != self.k:
            raise CheckpointError(
                f"checkpoint {self.path} has malformed block sums "
                f"{sums.shape} for k={self.k}"
            )
        self._blocks = {int(s): sums[i].copy() for i, s in enumerate(starts)}
        self._resumed_starts = frozenset(self._blocks)

    # -- queries -----------------------------------------------------------

    @property
    def completed_starts(self) -> list[int]:
        """Sorted start indices of blocks already recorded."""
        return sorted(self._blocks)

    @property
    def resumed_starts(self) -> frozenset[int]:
        """Blocks that were replayed from disk (vs recorded this run)."""
        return self._resumed_starts

    def has_block(self, start: int) -> bool:
        """Whether block ``start`` is already complete."""
        return int(start) in self._blocks

    def get_block(self, start: int) -> np.ndarray:
        """The stored partial sums of block ``start`` (float64 copy)."""
        try:
            return self._blocks[int(start)].copy()
        except KeyError:
            raise CheckpointError(f"block {start} is not checkpointed") from None

    # -- recording ---------------------------------------------------------

    def record_block(self, start: int, sums: np.ndarray) -> None:
        """Persist one completed block (flushes per ``flush_every``)."""
        arr = np.asarray(sums, dtype=np.float64)
        if arr.shape != (self.k,):
            raise ValidationError(
                f"block sums must have shape ({self.k},), got {arr.shape}"
            )
        self._blocks[int(start)] = arr.copy()
        self._dirty += 1
        if self.path is not None and self._dirty >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Atomically write the checkpoint file (temp file + rename)."""
        if self.path is None:
            self._dirty = 0
            return
        starts = np.array(sorted(self._blocks), dtype=np.int64)
        sums = (
            np.stack([self._blocks[int(s)] for s in starts])
            if starts.size
            else np.empty((0, self.k), dtype=np.float64)
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=self.path.name + ".", suffix=".tmp", dir=self.path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(
                    handle,
                    fingerprint=np.array(self.fingerprint),
                    starts=starts,
                    sums=sums,
                    n=np.int64(self.n),
                    k=np.int64(self.k),
                    block_rows=np.int64(self.block_rows),
                )
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._dirty = 0

    def discard(self) -> None:
        """Delete the on-disk checkpoint (after a completed sweep)."""
        self._blocks.clear()
        self._dirty = 0
        if self.path is not None and self.path.exists():
            self.path.unlink()
