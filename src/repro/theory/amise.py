"""Asymptotic (AMISE) optimal-bandwidth theory.

The cross-validated bandwidth the paper computes is the finite-sample
estimate of a well-understood asymptotic target.  This module provides
that target in closed form, so simulation studies can check that the
selectors converge to it:

* **KDE** (Silverman 1986, eq. 3.21):

    h* = [ R(K) / (κ₂(K)² · R(f'')) ]^{1/5} · n^{-1/5}

* **NW regression** (Li & Racine 2007, §2.1): with homoskedastic noise
  variance σ², design density f and mean function g,

    h* = [ R(K)·σ²·∫w(x)/f(x)dx / (κ₂(K)²·∫ B(x)² w(x) dx) ]^{1/5} · n^{-1/5},
    B(x) = g''(x) + 2·g'(x)·f'(x)/f(x)

  (w is a weight/trimming function; we take w = f over the evaluation
  interval, which turns the variance integral into the interval length).

Functionals of unknown curves (``R(f'')``, the bias integral) are
computed numerically from user-supplied callables on a dense grid —
exactly what a simulation study with a known DGP has.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ValidationError
from repro.kernels import Kernel, get_kernel

__all__ = [
    "roughness_of",
    "kde_amise_bandwidth",
    "regression_amise_bandwidth",
    "gaussian_reference_kde_bandwidth",
]

_TRAPEZOID = getattr(np, "trapezoid", None) or np.trapz


def _second_derivative(fn: Callable, grid: np.ndarray) -> np.ndarray:
    step = grid[1] - grid[0]
    values = np.asarray(fn(grid), dtype=float)
    return np.gradient(np.gradient(values, step), step)


def roughness_of(
    fn: Callable,
    lo: float,
    hi: float,
    *,
    derivative: int = 0,
    grid_points: int = 4097,
) -> float:
    """``R(fn^{(derivative)}) = ∫ (fn^{(d)})² `` over ``[lo, hi]`` numerically."""
    if hi <= lo:
        raise ValidationError(f"need lo < hi, got [{lo}, {hi}]")
    grid = np.linspace(lo, hi, grid_points)
    step = grid[1] - grid[0]
    values = np.asarray(fn(grid), dtype=float)
    for _ in range(derivative):
        values = np.gradient(values, step)
    return float(_TRAPEZOID(values * values, grid))


def kde_amise_bandwidth(
    pdf: Callable,
    n: int,
    *,
    kernel: str | Kernel = "epanechnikov",
    support: tuple[float, float] = (-10.0, 10.0),
    grid_points: int = 8193,
) -> float:
    """AMISE-optimal KDE bandwidth for a known density."""
    if n < 2:
        raise ValidationError(f"need n >= 2, got {n}")
    kern = get_kernel(kernel)
    r_f2 = roughness_of(pdf, *support, derivative=2, grid_points=grid_points)
    if r_f2 <= 0.0:
        raise ValidationError(
            "R(f'') is zero on the given support (density too flat there?)"
        )
    return (kern.roughness / (kern.second_moment**2 * r_f2)) ** 0.2 * n ** (-0.2)


def gaussian_reference_kde_bandwidth(
    sigma: float, n: int, *, kernel: str | Kernel = "gaussian"
) -> float:
    """Exact AMISE bandwidth when the truth is N(μ, σ²).

    For the Gaussian kernel this is the textbook ``1.0592·σ·n^{-1/5}``
    (``R(φ'') = 3/(8√π σ⁵)``); other kernels get the same closed form
    with their own constants.
    """
    if sigma <= 0.0:
        raise ValidationError(f"sigma must be positive, got {sigma}")
    kern = get_kernel(kernel)
    r_f2 = 3.0 / (8.0 * np.sqrt(np.pi) * sigma**5)
    return (kern.roughness / (kern.second_moment**2 * r_f2)) ** 0.2 * n ** (-0.2)


def regression_amise_bandwidth(
    mean: Callable,
    n: int,
    *,
    kernel: str | Kernel = "epanechnikov",
    noise_variance: float,
    design_density: Callable | None = None,
    interval: tuple[float, float] = (0.0, 1.0),
    grid_points: int = 8193,
) -> float:
    """AMISE-optimal NW bandwidth for a known mean/design/noise.

    ``design_density`` defaults to uniform on ``interval`` (the paper's
    DGP), which zeroes the ``f'/f`` bias term.
    """
    if n < 2:
        raise ValidationError(f"need n >= 2, got {n}")
    if noise_variance <= 0.0:
        raise ValidationError("noise_variance must be positive")
    lo, hi = interval
    if hi <= lo:
        raise ValidationError(f"need lo < hi interval, got {interval}")
    kern = get_kernel(kernel)
    grid = np.linspace(lo, hi, grid_points)
    step = grid[1] - grid[0]

    if design_density is None:
        f_vals = np.full_like(grid, 1.0 / (hi - lo))
        f_prime = np.zeros_like(grid)
    else:
        f_vals = np.asarray(design_density(grid), dtype=float)
        f_prime = np.gradient(f_vals, step)
        if np.any(f_vals <= 0.0):
            raise ValidationError(
                "design density must be positive on the interval"
            )

    g_vals = np.asarray(mean(grid), dtype=float)
    g_prime = np.gradient(g_vals, step)
    g_second = np.gradient(g_prime, step)
    bias_curve = g_second + 2.0 * g_prime * f_prime / f_vals

    # Weight w = f: variance integral ∫ w/f = interval length; bias
    # integral ∫ B² f.
    variance_term = kern.roughness * noise_variance * (hi - lo)
    bias_term = kern.second_moment**2 * float(
        _TRAPEZOID(bias_curve**2 * f_vals, grid)
    )
    if bias_term <= 0.0:
        raise ValidationError(
            "bias functional is zero (mean function linear and design "
            "uniform?) — AMISE bandwidth is unbounded"
        )
    return (variance_term / (4.0 * bias_term)) ** 0.2 * n ** (-0.2)
