"""Monte Carlo simulation studies of bandwidth selectors.

The evaluation layer the paper's §IV-C gestures at ("the R programs used
different randomly generated data ... verify that both ... produced
optimal bandwidths in similar ranges"): draw many datasets from a known
DGP, run one or more selectors on each, and summarise where the selected
bandwidths land and how well the resulting fits estimate the true curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.exceptions import ValidationError
from repro.core.selectors import BandwidthSelector
from repro.data import RegressionSample
from repro.regression import nw_estimate
from repro.utils.validation import check_positive_int

__all__ = ["SelectorStudy", "StudyResult", "fit_mise"]

_TRAPEZOID = getattr(np, "trapezoid", None) or np.trapz


def fit_mise(
    sample: RegressionSample,
    h: float,
    *,
    kernel: str = "epanechnikov",
    grid_points: int = 256,
    trim: float = 0.05,
) -> float:
    """Integrated squared error of the NW fit at bandwidth ``h``.

    Evaluated against the sample's true mean over the trimmed sample
    range (``trim`` keeps boundary bias from dominating the integral —
    the ``M(X_i)``-style interior focus the CV objective itself has).
    """
    lo = float(np.quantile(sample.x, trim))
    hi = float(np.quantile(sample.x, 1.0 - trim))
    if hi <= lo:
        raise ValidationError("sample range collapsed after trimming")
    pts = np.linspace(lo, hi, grid_points)
    est, valid = nw_estimate(sample.x, sample.y, pts, h, kernel)
    truth = sample.true_mean(pts)
    diff = np.where(valid, est - truth, 0.0)
    return float(_TRAPEZOID(diff * diff, pts))


@dataclass(frozen=True)
class StudyResult:
    """Monte Carlo summary for one selector."""

    selector: str
    bandwidths: np.ndarray
    scores: np.ndarray
    mises: np.ndarray
    wall_seconds: np.ndarray

    @property
    def replications(self) -> int:
        """Number of Monte Carlo draws."""
        return int(self.bandwidths.shape[0])

    def summary(self) -> dict[str, float]:
        """Mean/spread of the selected bandwidths and resulting MISE."""
        return {
            "h_mean": float(self.bandwidths.mean()),
            "h_sd": float(self.bandwidths.std(ddof=1))
            if self.replications > 1
            else 0.0,
            "h_min": float(self.bandwidths.min()),
            "h_max": float(self.bandwidths.max()),
            "mise_mean": float(self.mises.mean()),
            "cv_mean": float(self.scores.mean()),
            "seconds_mean": float(self.wall_seconds.mean()),
        }


@dataclass
class SelectorStudy:
    """Runs several selectors over replicated draws of one DGP.

    Parameters
    ----------
    dgp:
        Callable ``(n, seed) -> RegressionSample``.
    n:
        Sample size per replication.
    replications:
        Monte Carlo draw count.
    kernel:
        Kernel used for the MISE evaluation (selectors carry their own).
    base_seed:
        Replication r uses seed ``base_seed + r`` — selectors see the
        *same* draws, so comparisons are paired.
    """

    dgp: Callable[..., RegressionSample]
    n: int = 500
    replications: int = 20
    kernel: str = "epanechnikov"
    base_seed: int = 0
    results: dict[str, StudyResult] = field(default_factory=dict)

    def run(
        self, selectors: Mapping[str, BandwidthSelector]
    ) -> dict[str, StudyResult]:
        """Execute the study; returns (and stores) per-selector results."""
        n = check_positive_int(self.n, name="n")
        reps = check_positive_int(self.replications, name="replications")
        samples = [
            self.dgp(n, seed=self.base_seed + r) for r in range(reps)
        ]
        for name, selector in selectors.items():
            hs = np.empty(reps, dtype=np.float64)
            scores = np.empty(reps, dtype=np.float64)
            mises = np.empty(reps, dtype=np.float64)
            seconds = np.empty(reps, dtype=np.float64)
            for r, sample in enumerate(samples):
                res = selector.select(sample.x, sample.y)
                hs[r] = res.bandwidth
                scores[r] = res.score
                seconds[r] = res.wall_seconds
                mises[r] = fit_mise(sample, res.bandwidth, kernel=self.kernel)
            self.results[name] = StudyResult(
                selector=name,
                bandwidths=hs,
                scores=scores,
                mises=mises,
                wall_seconds=seconds,
            )
        return self.results

    def report(self) -> str:
        """Tabular summary across selectors."""
        if not self.results:
            return "(study has not been run)"
        cols = ["selector", "h_mean", "h_sd", "mise_mean", "seconds_mean"]
        lines = ["  ".join(f"{c:>14}" for c in cols)]
        for name, result in self.results.items():
            s = result.summary()
            lines.append(
                f"{name:>14}  "
                f"{s['h_mean']:>14.5f}  {s['h_sd']:>14.5f}  "
                f"{s['mise_mean']:>14.6f}  {s['seconds_mean']:>14.4f}"
            )
        return "\n".join(lines)
