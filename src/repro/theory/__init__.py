"""Asymptotic bandwidth theory and Monte Carlo study harness."""

from repro.theory.amise import (
    gaussian_reference_kde_bandwidth,
    kde_amise_bandwidth,
    regression_amise_bandwidth,
    roughness_of,
)
from repro.theory.simulation import SelectorStudy, StudyResult, fit_mise

__all__ = [
    "SelectorStudy",
    "StudyResult",
    "fit_mise",
    "gaussian_reference_kde_bandwidth",
    "kde_amise_bandwidth",
    "regression_amise_bandwidth",
    "roughness_of",
]
