"""repro — optimal bandwidth selection for kernel regression.

A full reproduction of Rohlfs & Zahran, *"Optimal Bandwidth Selection for
Kernel Regression Using a Fast Grid Search and a GPU"* (IPPS 2017):

* the least-squares cross-validation objective ``CV_lc(h)`` for the
  Nadaraya–Watson estimator (:mod:`repro.core.loocv`);
* the paper's **fast sorted grid search** — the whole bandwidth grid in
  O(n² log n) (:mod:`repro.core.fastgrid`);
* the paper's four evaluation programs: an R-``np``-style numerical
  optimiser, its multicore variant, the sequential fast grid, and the
  CUDA program running on a faithful **GPU simulator**
  (:mod:`repro.gpusim`, :mod:`repro.cuda_port`);
* the downstream estimators the bandwidth feeds: NW and local-linear
  regression with cross-validated confidence bands
  (:mod:`repro.regression`), and the KDE/LSCV extension
  (:mod:`repro.kde`);
* a benchmark harness regenerating every table and figure of the
  paper's evaluation (:mod:`repro.bench`).

Quickstart::

    import numpy as np
    from repro import select_bandwidth, NadarayaWatson

    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, 2000)
    y = 0.5 * x + 10 * x**2 + rng.uniform(0, 0.5, 2000)

    result = select_bandwidth(x, y)            # fast sorted grid search
    model = NadarayaWatson(bandwidth=result.bandwidth).fit(x, y)
    curve = model.predict(np.linspace(0, 1, 101))
"""

from repro.core import (
    BandwidthGrid,
    GridSearchSelector,
    NumericalOptimizationSelector,
    RuleOfThumbSelector,
    SelectionResult,
    select_bandwidth,
)
from repro.bagged import BaggedCVSelector
from repro.kde import KernelDensity, select_kde_bandwidth
from repro.kernels import get_kernel, list_kernels
from repro.regression import LocalLinear, NadarayaWatson

__version__ = "1.0.0"

__all__ = [
    "BaggedCVSelector",
    "BandwidthGrid",
    "GridSearchSelector",
    "KernelDensity",
    "LocalLinear",
    "NadarayaWatson",
    "NumericalOptimizationSelector",
    "RuleOfThumbSelector",
    "SelectionResult",
    "__version__",
    "get_kernel",
    "list_kernels",
    "select_bandwidth",
    "select_kde_bandwidth",
]
