"""Public surface of the compiled fast-grid engine.

Drop-in counterparts of the :mod:`repro.core.fastgrid` entry points, all
routed through one dispatch:

* when the capability probe succeeded, the scalar-loop kernels in
  :mod:`repro.compiled.kernels` run under numba's ``njit`` (IEEE-strict:
  ``fastmath`` stays off, because byte-identity with numpy is the
  contract, and ``cache=True`` so recompiles amortise across processes);
* otherwise they fall back to the vectorised numpy reference — the same
  arithmetic, so float64 results are byte-identical either way.

Warm-up is explicit and observable: the first use of a dtype compiles the
kernel under a ``compiled.jit_warmup`` span, and the canonical call paths
(the ``compiled``/``blocked-compiled`` backends, :func:`cv_scores_compiled`)
warm *before* opening any per-block span, so JIT latency is never booked
against a block.  Per-block work runs under ``compiled.block``.

Chaos hook: every :func:`window_sums` call fires the ``compiled.jit``
fault site first, so an injected ``nojit`` fault surfaces as the typed
``REPRO_COMPILED_UNAVAILABLE`` — which the resilience chain degrades
losslessly (``compiled -> numpy``, ``blocked-compiled -> blocked``).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.compiled import capability as _capability
from repro.compiled import kernels as _kernels
from repro.exceptions import CompiledUnavailableError, ValidationError
from repro.kernels import Kernel
from repro.obs.tracer import current_tracer
from repro.resilience import faults
from repro.utils.numeric import fold_rows

__all__ = [
    "compiled_block_sums",
    "compiled_row_contributions",
    "cv_scores_compiled",
    "implementation",
    "jit_available",
    "refresh",
    "require_available",
    "warmup",
    "window_sums",
]

#: Jitted kernels by dtype name, built lazily on first warm-up.
_JITTED: dict[str, Callable[..., None]] | None = None

#: Dtypes whose kernel has been compiled (or fallback-warmed) already.
_WARMED: set[str] = set()

_KERNEL_SOURCES: dict[str, Callable[..., None]] = {
    "float64": _kernels.window_sums_f64,
    "float32": _kernels.window_sums_f32,
}


def implementation() -> str:
    """``"numba"`` or ``"numpy"`` — what backs the compiled engine now."""
    return _capability.capability().implementation


def jit_available() -> bool:
    """Whether the numba JIT backs the compiled engine in this process."""
    return _capability.capability().available


def require_available() -> None:
    """Raise ``REPRO_COMPILED_UNAVAILABLE`` unless the JIT is active.

    The ``require_jit=True`` backend option funnels here: callers that
    *demand* compiled execution (a perf harness, a bench gate) get a typed
    structural failure instead of a silent — if byte-identical — fallback.
    """
    cap = _capability.capability()
    if not cap.available:
        raise CompiledUnavailableError(cap.reason)


def refresh(
    importer: Callable[[str], Any] | None = None,
    env: Any | None = None,
) -> _capability.Capability:
    """Re-probe the capability and drop all jitted/warm state.

    The test hook behind the fallback suite: simulate a numba-less import
    (or ``REPRO_COMPILED=0``) and the next call recompiles — or falls
    back — from scratch.
    """
    global _JITTED
    cap = _capability.refresh(importer, env)
    _JITTED = None
    _WARMED.clear()
    return cap


def _jitted() -> dict[str, Callable[..., None]]:
    """Build (once) the njit-compiled kernel table."""
    global _JITTED
    if _JITTED is None:
        import numba

        # fastmath stays False: reassociation would break byte-identity
        # with numpy.  nogil lets future callers overlap blocks in threads.
        jit = numba.njit(cache=True, nogil=True, fastmath=False)
        _JITTED = {
            name: jit(source) for name, source in _KERNEL_SOURCES.items()
        }
    return _JITTED


def _dtype_key(dtype: str | np.dtype) -> str:
    key = str(np.dtype(dtype))
    if key not in _KERNEL_SOURCES:
        raise ValidationError(
            f"compiled engine supports float32/float64, got {key!r}"
        )
    return key


def warmup(dtype: str | np.dtype = "float64") -> str:
    """Compile (or fallback-warm) the kernel for ``dtype``; idempotent.

    Emits one ``compiled.jit_warmup`` span per (process, dtype) — on the
    fallback it still appears (with ``implementation="numpy"``) so trace
    consumers see a uniform shape.  Returns the implementation name.

    The canonical call paths warm *before* any per-block span opens; the
    perf guard in the test suite asserts no ``compiled.jit_warmup`` span
    is ever a descendant of a block span.
    """
    key = _dtype_key(dtype)
    impl = implementation()
    if key in _WARMED:
        return impl
    with current_tracer().span(
        "compiled.jit_warmup", dtype=key, implementation=impl
    ):
        if impl == "numba":
            fn = _jitted()[key]
            # A two-point, one-bandwidth call compiles every branch cheaply.
            fn(
                np.zeros(1, dtype=np.float64),
                np.array([0.0, 1.0], dtype=np.float64),
                np.array([0.0, 1.0], dtype=np.float64),
                np.ones(1, dtype=np.float64),
                np.ones(1, dtype=np.float64),
                np.array([0, 2], dtype=np.int64),
                np.array([0.75, -0.75], dtype=np.float64),
                np.zeros((1, 1), dtype=np.float64),
                np.zeros((1, 1), dtype=np.float64),
            )
        _WARMED.add(key)
    return impl


def window_sums(
    x_block: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    grid: np.ndarray,
    kern: Kernel,
    np_dtype: np.dtype,
) -> tuple[np.ndarray, np.ndarray]:
    """Compiled counterpart of ``fastgrid._window_sums_for_block``.

    Same signature, same ``(num, den)`` float64 output — byte-identical in
    float64, tolerance-contracted in float32.  Falls back to the numpy
    reference when the JIT is unavailable.
    """
    faults.fire("compiled.jit", f"block[rows={int(x_block.shape[0])}]")
    if not _capability.capability().available:
        from repro.core.fastgrid import _window_sums_for_block

        return _window_sums_for_block(x_block, x, y, grid, kern, np_dtype)
    key = _dtype_key(np_dtype)
    if key not in _WARMED:
        warmup(key)
    fn = _jitted()[key]
    terms = kern.poly_terms or ()
    powers = np.array([t.power for t in terms], dtype=np.int64)
    coeffs = np.array([t.coefficient for t in terms], dtype=np.float64)
    boundaries = grid * kern.support_radius
    m = int(x_block.shape[0])
    k = int(grid.shape[0])
    num = np.zeros((m, k), dtype=np.float64)
    den = np.zeros((m, k), dtype=np.float64)
    with current_tracer().span("compiled.block", rows=m, k=k, dtype=key):
        fn(
            np.ascontiguousarray(x_block, dtype=np.float64),
            np.ascontiguousarray(x, dtype=np.float64),
            np.ascontiguousarray(y, dtype=np.float64),
            boundaries,
            grid,
            powers,
            coeffs,
            num,
            den,
        )
    return num, den


def compiled_row_contributions(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel_name: str,
    start: int,
    stop: int,
    dtype: str = "float64",
) -> np.ndarray:
    """Drop-in for :func:`repro.core.fastgrid.fastgrid_row_contributions`.

    Top-level (hence picklable): pool and engine work units can ship it to
    forked workers exactly like the numpy original.  Partition-invariant
    for the same reason the original is — each row sees the whole sample.
    """
    from repro.core.fastgrid import fastgrid_row_contributions

    return fastgrid_row_contributions(
        x, y, bandwidths, kernel_name, start, stop, dtype, engine="compiled"
    )


def compiled_block_sums(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel_name: str,
    start: int,
    stop: int,
    dtype: str = "float64",
) -> np.ndarray:
    """Drop-in for :func:`repro.core.fastgrid.fastgrid_block_sums`.

    The resilient engine's work unit for the ``compiled`` and
    ``blocked-compiled`` candidates: identical block partials to the numpy
    unit (float64), which is what makes the degradation spur lossless.
    """
    return fold_rows(
        compiled_row_contributions(
            x, y, bandwidths, kernel_name, start, stop, dtype
        )
    )


def cv_scores_compiled(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str | Kernel = "epanechnikov",
    *,
    chunk_rows: int | None = None,
    dtype: str = "float64",
) -> np.ndarray:
    """Whole-grid CV scores on the compiled engine.

    Warm-up happens here, before the sweep's first block span, then the
    shared chunked driver runs with ``engine="compiled"`` — same strict
    row-order fold, same traced Neumaier shadow, byte-identical float64
    curves.
    """
    from repro.core.fastgrid import cv_scores_fastgrid

    warmup(dtype)
    return cv_scores_fastgrid(
        x,
        y,
        bandwidths,
        kernel,
        chunk_rows=chunk_rows,
        dtype=dtype,
        engine="compiled",
    )
