"""Backend registrations for the compiled engine.

Two entries join the registry (imported lazily by
:func:`repro.core.backends.get_backend`, mirroring gpusim/distributed):

===================  ======================================================
``compiled``         the chunked in-core sweep with the jitted per-block
                     kernel — the "Sequential C" column made real (numba
                     plays the role of the paper's compiled C program)
``blocked-compiled`` the budget-planned out-of-core sweep driving the same
                     jitted kernel block by block — the fast *and*
                     memory-bounded configuration
===================  ======================================================

Both accept ``require_jit=True`` to turn the silent capability fallback
into a typed ``REPRO_COMPILED_UNAVAILABLE`` failure, and both warm the
JIT *before* the sweep so compilation latency lands in the
``compiled.jit_warmup`` span, never inside a block.  Float64 results are
byte-identical to ``numpy``/``blocked`` respectively — the serving cache
keys them under the same fingerprint family
(:func:`repro.serving.cache.canonical_backend`).
"""

from __future__ import annotations

import numpy as np

from repro.compiled import api
from repro.core.backends import register_backend
from repro.core.blockwise import cv_scores_blocked
from repro.core.fastgrid import cv_scores_fastgrid
from repro.core.loocv import cv_scores_dense_grid
from repro.kernels import Kernel, get_kernel
from repro.obs.tracer import current_tracer

__all__ = ["compiled_backend", "blocked_compiled_backend"]


def compiled_backend(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str | Kernel = "epanechnikov",
    *,
    chunk_rows: int | None = None,
    dtype: str = "float64",
    require_jit: bool = False,
    **_: object,
) -> np.ndarray:
    """In-core sweep on the compiled engine (numpy-compatible options)."""
    dense = not get_kernel(kernel).supports_fast_grid
    with current_tracer().span(
        "backend:compiled",
        n=int(np.asarray(x).shape[0]),
        k=len(bandwidths),
        dense=dense,
        implementation=api.implementation(),
    ):
        if require_jit:
            api.require_available()
        if dense:
            # Non-polynomial kernels have no fast-grid form on any engine.
            return cv_scores_dense_grid(
                x, y, bandwidths, kernel, chunk_rows=chunk_rows
            )
        api.warmup(dtype)
        return cv_scores_fastgrid(
            x,
            y,
            bandwidths,
            kernel,
            chunk_rows=chunk_rows,
            dtype=dtype,
            engine="compiled",
        )


def blocked_compiled_backend(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str | Kernel = "epanechnikov",
    *,
    memory_budget: int | float | str | None = None,
    block_rows: int | None = None,
    dtype: str = "float64",
    require_jit: bool = False,
    **_: object,
) -> np.ndarray:
    """Budget-planned out-of-core sweep on the compiled engine."""
    dense = not get_kernel(kernel).supports_fast_grid
    with current_tracer().span(
        "backend:blocked-compiled",
        n=int(np.asarray(x).shape[0]),
        k=len(bandwidths),
        dense=dense,
        implementation=api.implementation(),
    ):
        if require_jit:
            api.require_available()
        if dense:
            return cv_scores_dense_grid(x, y, bandwidths, kernel)
        api.warmup(dtype)
        return cv_scores_blocked(
            x,
            y,
            bandwidths,
            get_kernel(kernel).name,
            memory_budget=memory_budget,
            block_rows=block_rows,
            dtype=dtype,
            engine="compiled",
        )


# overwrite=True keeps a test-driven importlib.reload() idempotent.
register_backend("compiled", compiled_backend, overwrite=True)
register_backend("blocked-compiled", blocked_compiled_backend, overwrite=True)
