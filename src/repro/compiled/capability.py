"""Capability probe for the compiled (numba) fast-grid engine.

The decision "can this process JIT the hot path?" is made **once, at
import time**, and cached as a frozen :class:`Capability` — so every later
call site (backends, the resilient engine, serving) sees one consistent
answer instead of racing their own imports.  Two inputs:

* the ``REPRO_COMPILED`` environment variable — ``0``/``false``/``off``/
  ``no`` disables the JIT outright (the escape hatch for debugging a
  suspected codegen issue, or for forcing the fallback leg in CI);
* an import probe for ``numba`` itself.

Failure is **not an error**: the probe returns an unavailable capability
carrying the human-readable reason, and the engine silently uses the
numpy implementation, which is byte-identical in float64.  A caller that
*demands* the JIT (``require_jit=True``) gets a typed
``REPRO_COMPILED_UNAVAILABLE`` failure instead — see
:func:`repro.compiled.api.require_available`.

The importer is injectable (and :func:`refresh` re-runs the probe) so the
fallback test suite can simulate a numba-less interpreter inside a
process that may actually have numba installed — and vice versa.
"""

from __future__ import annotations

import importlib
import os
from dataclasses import dataclass
from typing import Any, Callable, Mapping

__all__ = [
    "COMPILED_ENV",
    "Capability",
    "capability",
    "jit_available",
    "probe",
    "refresh",
]

#: Environment variable gating the JIT; falsy values force the fallback.
COMPILED_ENV = "REPRO_COMPILED"

_DISABLING_VALUES = frozenset({"0", "false", "off", "no"})


@dataclass(frozen=True)
class Capability:
    """Outcome of one probe: which implementation this process will run."""

    #: True when the numba JIT is importable and not disabled.
    available: bool
    #: ``"numba"`` or ``"numpy"`` — what :mod:`repro.compiled.api` executes.
    implementation: str
    #: Human-readable why (shown by ``repro info`` and in error messages).
    reason: str
    #: numba's version string when available.
    numba_version: str | None = None


def probe(
    importer: Callable[[str], Any] | None = None,
    env: Mapping[str, str] | None = None,
) -> Capability:
    """Run one capability probe; pure — does not touch module state.

    ``importer`` defaults to :func:`importlib.import_module`; tests pass a
    raising stand-in to simulate an absent numba.  ``env`` defaults to
    ``os.environ``.
    """
    environ: Mapping[str, str] = os.environ if env is None else env
    raw = environ.get(COMPILED_ENV, "")
    if raw.strip().lower() in _DISABLING_VALUES:
        return Capability(
            available=False,
            implementation="numpy",
            reason=f"JIT disabled by {COMPILED_ENV}={raw.strip()!r}",
        )
    load = importer if importer is not None else importlib.import_module
    try:
        numba = load("numba")
    except Exception as exc:
        # Any import failure — missing package, broken install, llvmlite
        # ABI mismatch — means the same thing: no JIT in this process.
        # The reason is preserved for `repro info` / require_available().
        return Capability(
            available=False,
            implementation="numpy",
            reason=f"numba unavailable: {exc}",
        )
    version = str(getattr(numba, "__version__", "unknown"))
    return Capability(
        available=True,
        implementation="numba",
        reason=f"numba {version}",
        numba_version=version,
    )


_CAPABILITY: Capability = probe()


def capability() -> Capability:
    """The capability selected for this process (probed once at import)."""
    return _CAPABILITY


def jit_available() -> bool:
    """Whether the numba JIT backs the compiled engine in this process."""
    return _CAPABILITY.available


def refresh(
    importer: Callable[[str], Any] | None = None,
    env: Mapping[str, str] | None = None,
) -> Capability:
    """Re-run the probe and install the result (test/diagnostic hook).

    Callers that cache jitted functions must also drop them —
    :func:`repro.compiled.api.refresh` does both; prefer it.
    """
    global _CAPABILITY
    _CAPABILITY = probe(importer, env)
    return _CAPABILITY
