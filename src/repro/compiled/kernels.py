"""Kernel source for the compiled fast-grid hot path.

These functions are the *scalar-loop* formulation of
:func:`repro.core.fastgrid._window_sums_for_block`, written so that numba
can ``njit`` them unchanged (see :mod:`repro.compiled.api`) while the very
same source remains executable as plain Python — which is how the
fallback-leg test suite proves, on a machine without numba, that the
algorithm is byte-for-byte the numpy reference.

Byte-identity discipline (float64)
----------------------------------
The compiled float64 curves must be **bit-for-bit** the numpy backend's,
because the serving cache keys both under one fingerprint family.  Every
arithmetic choice below therefore mirrors the numpy formulation exactly:

* **Binning** replicates ``np.searchsorted(boundaries, d, side="left")``
  with an explicit leftmost-insertion binary search.
* **Histogram accumulation** replicates ``np.bincount``: weights are added
  bin-by-bin in ascending ``j`` (input) order — bins are row-segmented in
  the numpy path, so rows never interleave and a per-row ``j`` loop is the
  identical order.
* **Prefix sums** replicate ``np.cumsum``'s strict left-to-right running
  sum over the first ``k`` bins.
* **Powers** replicate :func:`repro.utils.numeric.int_power`: the same
  left-to-right square-and-multiply chain the reference sweep uses
  (``p == 0 -> 1``, ``p == 1 -> x``, ``p == 2 -> x·x``, higher powers by
  binary exponentiation, MSB first).  Every step is an exactly-rounded
  IEEE multiply, so the scalar loop lands on the vectorised bits at
  *every* polynomial power.  Neither ``x ** p`` (LLVM ``powi``) nor
  ``math.pow`` may be used — numpy's SIMD ``pow``, libm ``pow`` and a
  multiply chain all disagree by an ulp on a few percent of inputs,
  which is exactly why the reference avoids ``**`` too.
* **Term order** and the ``num += scale · s_yd`` accumulation order match
  the reference loop term-for-term.

float32 fast path
-----------------
``window_sums_f32`` mirrors the numpy float32 path's *semantics*: the
distance is formed in float64, rounded to float32 (``astype``), the
per-term distance power is computed in float32 (the same
exactly-rounded multiply chain, so it too is bit-exact against the
vectorised float32 sweep), and all sums are accumulated in float64
(numpy's ``bincount`` casts weights to float64 and ``y`` is float64, so
products promote).  In practice this makes the float32 path
byte-identical to numpy's as well; the *documented* contract is kept
deliberately weaker — ``h_opt`` on the same grid index, curves within
rtol 1e-5 — so a future JIT backend with fused multiplies or a
different float32 promotion rule has headroom without an API break.

Langrené & Warin (arXiv:1712.00993) motivate the compensation discipline:
the fast-sum-updating recurrences are stable only if the window sums are
never *downdated*.  Both formulations here only ever add (prefix sums over
non-negative bins), and the cross-row fold stays in
:func:`repro.utils.numeric.fold_rows`, whose Neumaier shadow the traced
path already records — the compiled engine changes none of that.

No numba import appears in this module: :mod:`repro.compiled.api` owns
the capability probe and applies ``njit`` to these functions when the
probe succeeds.
"""

from __future__ import annotations

import numpy as np

__all__ = ["window_sums_f32", "window_sums_f64"]


def window_sums_f64(
    x_block: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    boundaries: np.ndarray,
    grid: np.ndarray,
    powers: np.ndarray,
    coeffs: np.ndarray,
    num: np.ndarray,
    den: np.ndarray,
) -> None:
    """Accumulate per-power window sums for a row block, float64.

    ``boundaries`` is ``grid * support_radius`` (precomputed in float64 by
    the caller); ``powers``/``coeffs`` are the kernel's polynomial terms in
    declaration order; ``num``/``den`` are zeroed ``(m, k)`` float64
    outputs accumulated in place.
    """
    m = x_block.shape[0]
    n = x.shape[0]
    k = grid.shape[0]
    n_terms = powers.shape[0]
    dist_row = np.empty(n, dtype=np.float64)
    bin_row = np.empty(n, dtype=np.int64)
    hist_d = np.empty(k, dtype=np.float64)
    hist_yd = np.empty(k, dtype=np.float64)
    for i in range(m):
        xi = x_block[i]
        for j in range(n):
            d = abs(xi - x[j])
            dist_row[j] = d
            # searchsorted(boundaries, d, side="left"): leftmost insertion.
            lo = 0
            hi = k
            while lo < hi:
                mid = (lo + hi) // 2
                if boundaries[mid] < d:
                    lo = mid + 1
                else:
                    hi = mid
            bin_row[j] = lo
        for t in range(n_terms):
            p = powers[t]
            c = coeffs[t]
            # Highest set bit of p, for the square-and-multiply chains
            # below (the association order shared with
            # utils.numeric.int_power — the byte-identity contract).
            top = 1
            while (top << 1) <= p:
                top <<= 1
            for b in range(k):
                hist_d[b] = 0.0
                hist_yd[b] = 0.0
            for j in range(n):
                b = bin_row[j]
                if b < k:
                    if p == 0:
                        dp = 1.0
                    else:
                        d = dist_row[j]
                        dp = d
                        bit = top >> 1
                        while bit:
                            dp = dp * dp
                            if p & bit:
                                dp = dp * d
                            bit >>= 1
                    hist_d[b] += dp
                    hist_yd[b] += y[j] * dp
            s_d = 0.0
            s_yd = 0.0
            for col in range(k):
                s_d += hist_d[col]
                s_yd += hist_yd[col]
                if p == 0:
                    scale = c / 1.0
                else:
                    h = grid[col]
                    hp = h
                    bit = top >> 1
                    while bit:
                        hp = hp * hp
                        if p & bit:
                            hp = hp * h
                        bit >>= 1
                    scale = c / hp
                num[i, col] += scale * s_yd
                den[i, col] += scale * s_d


def window_sums_f32(
    x_block: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    boundaries: np.ndarray,
    grid: np.ndarray,
    powers: np.ndarray,
    coeffs: np.ndarray,
    num: np.ndarray,
    den: np.ndarray,
) -> None:
    """Float32 fast path: float32 distances/powers, float64 accumulation.

    Mirrors the numpy float32 semantics — the distance slab is rounded to
    float32 before binning and powering, while every running sum stays in
    float64 (numpy promotes the weighted products and histogram weights).
    ``num``/``den`` remain float64 ``(m, k)`` outputs.
    """
    m = x_block.shape[0]
    n = x.shape[0]
    k = grid.shape[0]
    n_terms = powers.shape[0]
    dist_row = np.empty(n, dtype=np.float32)
    bin_row = np.empty(n, dtype=np.int64)
    hist_d = np.empty(k, dtype=np.float64)
    hist_yd = np.empty(k, dtype=np.float64)
    for i in range(m):
        xi = x_block[i]
        for j in range(n):
            dist_row[j] = abs(xi - x[j])
            d32 = dist_row[j]
            lo = 0
            hi = k
            while lo < hi:
                mid = (lo + hi) // 2
                if boundaries[mid] < d32:
                    lo = mid + 1
                else:
                    hi = mid
            bin_row[j] = lo
        for t in range(n_terms):
            p = powers[t]
            c = coeffs[t]
            top = 1
            while (top << 1) <= p:
                top <<= 1
            for b in range(k):
                hist_d[b] = 0.0
                hist_yd[b] = 0.0
            for j in range(n):
                b = bin_row[j]
                if b < k:
                    if p == 0:
                        dp = np.float32(1.0)
                    else:
                        # Square-and-multiply in float32: every step an
                        # exactly-rounded float32 multiply, matching the
                        # vectorised float32 chain bit for bit.
                        d32 = dist_row[j]
                        dp = d32
                        bit = top >> 1
                        while bit:
                            dp = dp * dp
                            if p & bit:
                                dp = dp * d32
                            bit >>= 1
                    hist_d[b] += dp
                    hist_yd[b] += y[j] * dp
            s_d = 0.0
            s_yd = 0.0
            for col in range(k):
                s_d += hist_d[col]
                s_yd += hist_yd[col]
                if p == 0:
                    scale = c / 1.0
                else:
                    # The scale stays float64: the reference divides by
                    # int_power(grid, p) on the float64 grid.
                    h = grid[col]
                    hp = h
                    bit = top >> 1
                    while bit:
                        hp = hp * hp
                        if p & bit:
                            hp = hp * h
                        bit >>= 1
                    scale = c / hp
                num[i, col] += scale * s_yd
                den[i, col] += scale * s_d
