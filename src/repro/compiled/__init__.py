"""Compiled fast-grid hot path (ROADMAP item 1).

The paper's speed story has three rungs — interpreted R, compiled
sequential C, CUDA — and until this package the repo only had the first:
every backend bottomed out in the same interpreted/numpy sort +
prefix-sum kernel.  :mod:`repro.compiled` adds the second rung: a
numba-jitted scalar-loop implementation of the per-block window sums,
**byte-identical to numpy in float64**, with a float32 fast path under a
documented tolerance contract, selected once at import by a clean
capability probe (``REPRO_COMPILED=0`` is the escape hatch) and falling
back silently to the numpy reference when numba is absent.

Layout::

    capability.py   one-shot probe: env gate + injectable numba import
    kernels.py      dual-use kernel source (plain python OR njit-ed)
    api.py          warmup / window_sums / row-contribution wrappers
    backend.py      registers the `compiled` + `blocked-compiled` backends

Everything downstream — blockwise planning, resilience
(``compiled -> numpy`` degradation on ``REPRO_COMPILED_UNAVAILABLE``),
checkpoints, serving fingerprints, obs spans — composes unchanged,
because the engine swap happens inside
:func:`repro.core.fastgrid.fastgrid_row_contributions` and the float64
bits do not move.
"""

from repro.compiled.api import (
    compiled_block_sums,
    compiled_row_contributions,
    cv_scores_compiled,
    implementation,
    jit_available,
    refresh,
    require_available,
    warmup,
    window_sums,
)
from repro.compiled.capability import COMPILED_ENV, Capability, capability

__all__ = [
    "COMPILED_ENV",
    "Capability",
    "capability",
    "compiled_block_sums",
    "compiled_row_contributions",
    "cv_scores_compiled",
    "implementation",
    "jit_available",
    "refresh",
    "require_available",
    "warmup",
    "window_sums",
]
