"""Regression data-generating processes (DGPs).

Every generator returns a :class:`RegressionSample`, which carries the
draws *and* the noiseless conditional-mean function so tests and examples
can score estimates against the truth.

All generators take a :class:`numpy.random.Generator` (or a seed) rather
than touching global random state — runs are reproducible and generators
can be used safely from worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive_int

__all__ = [
    "RegressionSample",
    "DGP_REGISTRY",
    "generate",
    "paper_dgp",
    "linear_dgp",
    "sine_dgp",
    "doppler_dgp",
    "blocks_dgp",
    "heteroskedastic_dgp",
]


@dataclass(frozen=True)
class RegressionSample:
    """A simulated regression dataset.

    Attributes
    ----------
    x, y:
        The observed sample, both of length ``n``.
    mean_function:
        The true conditional mean ``g(x) = E[Y | X = x]`` as a vectorised
        callable (includes the mean of the noise term, so that
        ``mean_function(x)`` is the exact regression function the kernel
        estimator targets).
    name:
        Registry name of the generating process.
    noise_scale:
        A nominal scale of the noise term, for reporting.
    """

    x: np.ndarray
    y: np.ndarray
    mean_function: Callable[[np.ndarray], np.ndarray] = field(repr=False)
    name: str = "custom"
    noise_scale: float = 0.0

    @property
    def n(self) -> int:
        """Sample size."""
        return int(self.x.shape[0])

    def true_mean(self, at: np.ndarray | None = None) -> np.ndarray:
        """Evaluate the true regression function (default: at the sample)."""
        points = self.x if at is None else np.asarray(at, dtype=float)
        return self.mean_function(points)

    def domain(self) -> float:
        """Range of the regressor, ``max(x) - min(x)`` — the paper's
        default for the largest grid bandwidth."""
        return float(self.x.max() - self.x.min())


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def paper_dgp(
    n: int,
    *,
    seed: int | np.random.Generator | None = None,
    dtype: np.dtype | type = np.float64,
) -> RegressionSample:
    """The paper's experimental DGP (§IV).

    ``X ~ U(0, 1)``; ``Y = 0.5·X + 10·X² + u`` with ``u ~ U(0, 0.5)``.
    The noise has mean 0.25, so the true conditional mean is
    ``g(x) = 0.5x + 10x² + 0.25``.
    """
    n = check_positive_int(n, name="n")
    rng = _rng(seed)
    x = rng.uniform(0.0, 1.0, size=n).astype(dtype)
    u = rng.uniform(0.0, 0.5, size=n).astype(dtype)
    y = (0.5 * x + 10.0 * x * x + u).astype(dtype)

    def mean(points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        return 0.5 * points + 10.0 * points * points + 0.25

    return RegressionSample(x=x, y=y, mean_function=mean, name="paper", noise_scale=0.5)


def linear_dgp(
    n: int,
    *,
    slope: float = 2.0,
    intercept: float = 1.0,
    noise: float = 0.25,
    seed: int | np.random.Generator | None = None,
) -> RegressionSample:
    """A plain linear relationship with Gaussian noise.

    The easiest possible surface for a smoother — useful as a sanity
    baseline because large bandwidths are nearly optimal.
    """
    n = check_positive_int(n, name="n")
    rng = _rng(seed)
    x = rng.uniform(0.0, 1.0, size=n)
    y = intercept + slope * x + rng.normal(0.0, noise, size=n)

    def mean(points: np.ndarray) -> np.ndarray:
        return intercept + slope * np.asarray(points, dtype=float)

    return RegressionSample(x=x, y=y, mean_function=mean, name="linear", noise_scale=noise)


def sine_dgp(
    n: int,
    *,
    cycles: float = 3.0,
    noise: float = 0.3,
    seed: int | np.random.Generator | None = None,
) -> RegressionSample:
    """A smooth periodic mean, ``g(x) = sin(2π·cycles·x)``.

    Oversmoothing flattens the oscillations, so the CV-optimal bandwidth is
    decidedly interior — a good stress test for grid-edge handling.
    """
    n = check_positive_int(n, name="n")
    rng = _rng(seed)
    x = rng.uniform(0.0, 1.0, size=n)
    y = np.sin(2.0 * np.pi * cycles * x) + rng.normal(0.0, noise, size=n)

    def mean(points: np.ndarray) -> np.ndarray:
        return np.sin(2.0 * np.pi * cycles * np.asarray(points, dtype=float))

    return RegressionSample(x=x, y=y, mean_function=mean, name="sine", noise_scale=noise)


def doppler_dgp(
    n: int,
    *,
    noise: float = 0.2,
    seed: int | np.random.Generator | None = None,
) -> RegressionSample:
    """Donoho–Johnstone "doppler" mean: spatially varying frequency.

    No single bandwidth fits the whole curve well; it illustrates why
    practitioners care about *where* the CV optimum lands.
    """
    n = check_positive_int(n, name="n")
    rng = _rng(seed)
    x = rng.uniform(0.0, 1.0, size=n)

    def mean(points: np.ndarray) -> np.ndarray:
        p = np.asarray(points, dtype=float)
        eps = 0.05
        return np.sqrt(p * (1.0 - p)) * np.sin(2.1 * np.pi / (p + eps))

    y = mean(x) + rng.normal(0.0, noise, size=n)
    return RegressionSample(x=x, y=y, mean_function=mean, name="doppler", noise_scale=noise)


def blocks_dgp(
    n: int,
    *,
    noise: float = 0.3,
    seed: int | np.random.Generator | None = None,
) -> RegressionSample:
    """A piecewise-constant ("blocks") mean with jumps.

    Discontinuities break the smoothness assumption behind kernel
    regression; CV responds by picking small bandwidths.
    """
    n = check_positive_int(n, name="n")
    rng = _rng(seed)
    x = rng.uniform(0.0, 1.0, size=n)
    edges = np.array([0.0, 0.15, 0.35, 0.55, 0.8, 1.0000001])
    levels = np.array([0.0, 2.0, -1.0, 1.5, 0.5])

    def mean(points: np.ndarray) -> np.ndarray:
        p = np.asarray(points, dtype=float)
        idx = np.clip(np.searchsorted(edges, p, side="right") - 1, 0, len(levels) - 1)
        return levels[idx]

    y = mean(x) + rng.normal(0.0, noise, size=n)
    return RegressionSample(x=x, y=y, mean_function=mean, name="blocks", noise_scale=noise)


def heteroskedastic_dgp(
    n: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> RegressionSample:
    """Quadratic mean with noise variance growing in ``x``.

    Mirrors the wage/consumption curves that motivate nonparametric work in
    econometrics, where dispersion rises with the regressor.
    """
    n = check_positive_int(n, name="n")
    rng = _rng(seed)
    x = rng.uniform(0.0, 1.0, size=n)
    sigma = 0.1 + 0.6 * x
    y = 1.0 + 4.0 * (x - 0.5) ** 2 + rng.normal(0.0, 1.0, size=n) * sigma

    def mean(points: np.ndarray) -> np.ndarray:
        p = np.asarray(points, dtype=float)
        return 1.0 + 4.0 * (p - 0.5) ** 2

    return RegressionSample(
        x=x, y=y, mean_function=mean, name="heteroskedastic", noise_scale=0.4
    )


#: Name -> generator registry used by :func:`generate` and the CLI.
DGP_REGISTRY: Dict[str, Callable[..., RegressionSample]] = {
    "paper": paper_dgp,
    "linear": linear_dgp,
    "sine": sine_dgp,
    "doppler": doppler_dgp,
    "blocks": blocks_dgp,
    "heteroskedastic": heteroskedastic_dgp,
}


def generate(
    name: str,
    n: int,
    *,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> RegressionSample:
    """Generate a sample from a registered DGP by name."""
    try:
        factory = DGP_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(DGP_REGISTRY))
        raise ValidationError(f"unknown DGP {name!r}; known DGPs: {known}") from None
    return factory(n, seed=seed, **kwargs)
