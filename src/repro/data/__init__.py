"""Synthetic data generators.

The paper evaluates on randomly generated data — ``X ~ U(0, 1)`` with
``Y = 0.5·X + 10·X² + u``, ``u ~ U(0, 0.5)`` — and we reproduce that DGP
exactly (:func:`paper_dgp`).  The extra generators give the examples and
tests regression surfaces with qualitatively different difficulty (sharp
local structure, discontinuities, heteroskedasticity) and densities for the
KDE extension.
"""

from repro.data.generators import (
    DGP_REGISTRY,
    RegressionSample,
    blocks_dgp,
    doppler_dgp,
    generate,
    heteroskedastic_dgp,
    linear_dgp,
    paper_dgp,
    sine_dgp,
)
from repro.data.io import load_xy_csv, save_xy_csv
from repro.data.densities import (
    DENSITY_REGISTRY,
    DensitySample,
    bimodal_normal_sample,
    claw_sample,
    sample_density,
    skewed_sample,
    uniform_sample,
)

__all__ = [
    "DGP_REGISTRY",
    "DENSITY_REGISTRY",
    "DensitySample",
    "RegressionSample",
    "bimodal_normal_sample",
    "blocks_dgp",
    "claw_sample",
    "doppler_dgp",
    "generate",
    "heteroskedastic_dgp",
    "linear_dgp",
    "load_xy_csv",
    "paper_dgp",
    "save_xy_csv",
    "sample_density",
    "sine_dgp",
    "skewed_sample",
    "uniform_sample",
]
