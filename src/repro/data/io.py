"""Loading and saving regression samples as CSV.

§IV: "While the functions may accommodate any pair of Y_i and X_i
vectors, we use randomly generated data to test the performance" — this
module is the "any pair of vectors" entry point: plain two-column CSV
(header optional), round-trippable, used by the CLI's ``--data`` option.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.exceptions import DataShapeError, ValidationError
from repro.utils.validation import check_paired_samples

__all__ = ["load_xy_csv", "save_xy_csv"]


def load_xy_csv(
    path: str | Path,
    *,
    x_column: str | int = 0,
    y_column: str | int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Load paired (x, y) observations from a CSV file.

    Columns may be addressed by index or, when the file has a header
    row, by name.  A header is auto-detected (first row that does not
    parse as two floats).  Returns validated float64 arrays.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise ValidationError(f"no such data file: {file_path}")
    with file_path.open(newline="") as handle:
        rows = [row for row in csv.reader(handle) if row and any(c.strip() for c in row)]
    if not rows:
        raise DataShapeError(f"{file_path} is empty")

    header: list[str] | None = None
    try:
        [float(rows[0][i]) for i in range(len(rows[0]))]
    except (ValueError, IndexError):
        header = [c.strip() for c in rows[0]]
        rows = rows[1:]
    if not rows:
        raise DataShapeError(f"{file_path} has a header but no data rows")

    def resolve(col: str | int, default_idx: int) -> int:
        if isinstance(col, int):
            return col
        if header is None:
            raise ValidationError(
                f"column {col!r} requested by name but {file_path} has no header"
            )
        try:
            return header.index(col)
        except ValueError:
            raise ValidationError(
                f"column {col!r} not in header {header}"
            ) from None

    xi = resolve(x_column, 0)
    yi = resolve(y_column, 1)
    try:
        x = np.array([float(row[xi]) for row in rows])
        y = np.array([float(row[yi]) for row in rows])
    except (ValueError, IndexError) as exc:
        raise DataShapeError(
            f"{file_path}: could not parse columns {xi}/{yi} as floats ({exc})"
        ) from exc
    return check_paired_samples(x, y)


def save_xy_csv(
    path: str | Path,
    x: np.ndarray,
    y: np.ndarray,
    *,
    header: tuple[str, str] = ("x", "y"),
) -> Path:
    """Save paired observations to CSV (with header); returns the path."""
    x, y = check_paired_samples(x, y)
    file_path = Path(path)
    file_path.parent.mkdir(parents=True, exist_ok=True)
    with file_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(zip(x.tolist(), y.tolist()))
    return file_path
