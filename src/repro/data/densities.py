"""Density sampling for the KDE extension.

The paper notes (§II) that its least-squares cross-validation machinery
"can be applied to many similar problems ... including optimal bandwidth
selection for kernel density estimation".  These generators provide
densities with known analytic pdfs so the KDE benchmarks can report
integrated squared error against truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive_int

__all__ = [
    "DensitySample",
    "DENSITY_REGISTRY",
    "sample_density",
    "uniform_sample",
    "bimodal_normal_sample",
    "claw_sample",
    "skewed_sample",
]

_SQRT_2PI = float(np.sqrt(2.0 * np.pi))


def _normal_pdf(x: np.ndarray, mu: float, sigma: float) -> np.ndarray:
    z = (x - mu) / sigma
    return np.exp(-0.5 * z * z) / (sigma * _SQRT_2PI)


@dataclass(frozen=True)
class DensitySample:
    """A simulated univariate sample with its true pdf."""

    x: np.ndarray
    pdf: Callable[[np.ndarray], np.ndarray] = field(repr=False)
    name: str = "custom"

    @property
    def n(self) -> int:
        """Sample size."""
        return int(self.x.shape[0])

    def true_density(self, at: np.ndarray) -> np.ndarray:
        """Evaluate the true pdf at ``at``."""
        return self.pdf(np.asarray(at, dtype=float))


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def uniform_sample(
    n: int, *, seed: int | np.random.Generator | None = None
) -> DensitySample:
    """``U(0, 1)`` — the distribution of the paper's regressor."""
    n = check_positive_int(n, name="n")
    x = _rng(seed).uniform(0.0, 1.0, size=n)

    def pdf(points: np.ndarray) -> np.ndarray:
        p = np.asarray(points, dtype=float)
        return np.where((p >= 0.0) & (p <= 1.0), 1.0, 0.0)

    return DensitySample(x=x, pdf=pdf, name="uniform")


def bimodal_normal_sample(
    n: int, *, seed: int | np.random.Generator | None = None
) -> DensitySample:
    """Equal mixture of N(-1.5, 0.5²) and N(1.5, 0.5²).

    Clearly separated modes: rules of thumb (Silverman) oversmooth it,
    which is exactly the failure CV-based selection corrects.
    """
    n = check_positive_int(n, name="n")
    rng = _rng(seed)
    comp = rng.integers(0, 2, size=n)
    x = np.where(
        comp == 0,
        rng.normal(-1.5, 0.5, size=n),
        rng.normal(1.5, 0.5, size=n),
    )

    def pdf(points: np.ndarray) -> np.ndarray:
        p = np.asarray(points, dtype=float)
        return 0.5 * _normal_pdf(p, -1.5, 0.5) + 0.5 * _normal_pdf(p, 1.5, 0.5)

    return DensitySample(x=x, pdf=pdf, name="bimodal")


def claw_sample(
    n: int, *, seed: int | np.random.Generator | None = None
) -> DensitySample:
    """Marron–Wand "claw": N(0,1)/2 plus five narrow spikes.

    A classic hard case for bandwidth selectors — the spikes need a small
    bandwidth, the Gaussian body a large one.
    """
    n = check_positive_int(n, name="n")
    rng = _rng(seed)
    weights = np.array([0.5] + [0.1] * 5)
    means = np.array([0.0, -1.0, -0.5, 0.0, 0.5, 1.0])
    sigmas = np.array([1.0] + [0.1] * 5)
    comp = rng.choice(len(weights), size=n, p=weights)
    x = rng.normal(means[comp], sigmas[comp])

    def pdf(points: np.ndarray) -> np.ndarray:
        p = np.asarray(points, dtype=float)
        total = np.zeros_like(p)
        for w, mu, sg in zip(weights, means, sigmas):
            total += w * _normal_pdf(p, mu, sg)
        return total

    return DensitySample(x=x, pdf=pdf, name="claw")


def skewed_sample(
    n: int, *, seed: int | np.random.Generator | None = None
) -> DensitySample:
    """Log-normal-style right-skewed density (exp of N(0, 0.5²))."""
    n = check_positive_int(n, name="n")
    rng = _rng(seed)
    sigma = 0.5
    x = np.exp(rng.normal(0.0, sigma, size=n))

    def pdf(points: np.ndarray) -> np.ndarray:
        p = np.asarray(points, dtype=float)
        out = np.zeros_like(p)
        pos = p > 0
        z = np.log(p[pos]) / sigma
        out[pos] = np.exp(-0.5 * z * z) / (p[pos] * sigma * _SQRT_2PI)
        return out

    return DensitySample(x=x, pdf=pdf, name="skewed")


#: Name -> sampler registry.
DENSITY_REGISTRY: Dict[str, Callable[..., DensitySample]] = {
    "uniform": uniform_sample,
    "bimodal": bimodal_normal_sample,
    "claw": claw_sample,
    "skewed": skewed_sample,
}


def sample_density(
    name: str, n: int, *, seed: int | np.random.Generator | None = None
) -> DensitySample:
    """Draw ``n`` points from a registered density by name."""
    try:
        factory = DENSITY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(DENSITY_REGISTRY))
        raise ValidationError(
            f"unknown density {name!r}; known densities: {known}"
        ) from None
    return factory(n, seed=seed)
