"""Compactly supported polynomial kernels.

These are the kernels eligible for the paper's sorted prefix-sum grid
search: on ``|u| <= 1`` each weight is a polynomial in ``|u|``, so the
bandwidth-grid sweep only needs running sums of ``d^p`` and ``Y·d^p`` per
polynomial power ``p`` (paper §III and footnote 1).

All constants (roughness ``R(K)``, second moment ``κ₂``) are the standard
closed forms, e.g. Li & Racine (2007) Table 1.1.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel, PolyTerm

__all__ = [
    "EpanechnikovKernel",
    "UniformKernel",
    "TriangularKernel",
    "BiweightKernel",
    "TriweightKernel",
    "TricubeKernel",
]


class EpanechnikovKernel(Kernel):
    """``K(u) = 0.75·(1 - u²)·1{|u| <= 1}`` — the paper's kernel (eq. 3).

    Mean-squared-error optimal among nonnegative kernels; the 0.75 factor
    appears verbatim in the paper's per-thread bandwidth loop (§IV-B).
    """

    name = "epanechnikov"
    support_radius = 1.0
    poly_terms = (PolyTerm(0.75, 0), PolyTerm(-0.75, 2))
    roughness = 3.0 / 5.0
    second_moment = 1.0 / 5.0

    def _weight_on_support(self, u: np.ndarray) -> np.ndarray:
        return 0.75 * (1.0 - u * u)


class UniformKernel(Kernel):
    """``K(u) = 0.5·1{|u| <= 1}`` — the moving-average / boxcar kernel."""

    name = "uniform"
    support_radius = 1.0
    poly_terms = (PolyTerm(0.5, 0),)
    roughness = 1.0 / 2.0
    second_moment = 1.0 / 3.0

    def _weight_on_support(self, u: np.ndarray) -> np.ndarray:
        return np.full_like(u, 0.5)


class TriangularKernel(Kernel):
    """``K(u) = (1 - |u|)·1{|u| <= 1}``.

    The odd power of ``|u|`` shows why the prefix sums are kept per
    *power*, not per power-of-``u²``: footnote 1 of the paper names this
    kernel as sortable, and it needs a ``Σ d¹`` running sum.
    """

    name = "triangular"
    support_radius = 1.0
    poly_terms = (PolyTerm(1.0, 0), PolyTerm(-1.0, 1))
    roughness = 2.0 / 3.0
    second_moment = 1.0 / 6.0

    def _weight_on_support(self, u: np.ndarray) -> np.ndarray:
        return 1.0 - np.abs(u)


class BiweightKernel(Kernel):
    """``K(u) = (15/16)·(1 - u²)²·1{|u| <= 1}`` (a.k.a. quartic)."""

    name = "biweight"
    support_radius = 1.0
    poly_terms = (
        PolyTerm(15.0 / 16.0, 0),
        PolyTerm(-30.0 / 16.0, 2),
        PolyTerm(15.0 / 16.0, 4),
    )
    roughness = 5.0 / 7.0
    second_moment = 1.0 / 7.0

    def _weight_on_support(self, u: np.ndarray) -> np.ndarray:
        t = 1.0 - u * u
        return (15.0 / 16.0) * t * t


class TriweightKernel(Kernel):
    """``K(u) = (35/32)·(1 - u²)³·1{|u| <= 1}``."""

    name = "triweight"
    support_radius = 1.0
    poly_terms = (
        PolyTerm(35.0 / 32.0, 0),
        PolyTerm(-105.0 / 32.0, 2),
        PolyTerm(105.0 / 32.0, 4),
        PolyTerm(-35.0 / 32.0, 6),
    )
    roughness = 350.0 / 429.0
    second_moment = 1.0 / 9.0

    def _weight_on_support(self, u: np.ndarray) -> np.ndarray:
        t = 1.0 - u * u
        return (35.0 / 32.0) * t * t * t


class TricubeKernel(Kernel):
    """``K(u) = (70/81)·(1 - |u|³)³·1{|u| <= 1}`` — the LOWESS kernel."""

    name = "tricube"
    support_radius = 1.0
    poly_terms = (
        PolyTerm(70.0 / 81.0, 0),
        PolyTerm(-210.0 / 81.0, 3),
        PolyTerm(210.0 / 81.0, 6),
        PolyTerm(-70.0 / 81.0, 9),
    )
    roughness = 175.0 / 247.0
    second_moment = 35.0 / 243.0

    def _weight_on_support(self, u: np.ndarray) -> np.ndarray:
        t = 1.0 - np.abs(u) ** 3
        return (70.0 / 81.0) * t * t * t
