"""Non-polynomial kernels: Cosine (compact) and Gaussian (infinite).

Neither admits the prefix-sum decomposition:

* The Cosine kernel has compact support but ``cos(πu/2)`` is not a
  polynomial in ``u``, so the per-bandwidth sums cannot be rolled forward —
  selectors route it through the dense vectorised path.
* The Gaussian never truncates.  As the paper's footnote 1 observes, that
  also means it needs *no sort*: every observation contributes at every
  bandwidth, and the grid loop is a dense O(k·n²) computation regardless.
"""

from __future__ import annotations

import math

import numpy as np

from repro.kernels.base import Kernel

__all__ = ["CosineKernel", "GaussianKernel"]


class CosineKernel(Kernel):
    """``K(u) = (π/4)·cos(πu/2)·1{|u| <= 1}``."""

    name = "cosine"
    support_radius = 1.0
    poly_terms = None
    roughness = math.pi**2 / 16.0
    second_moment = 1.0 - 8.0 / math.pi**2

    def _weight_on_support(self, u: np.ndarray) -> np.ndarray:
        return (math.pi / 4.0) * np.cos(math.pi * u / 2.0)


class GaussianKernel(Kernel):
    """``K(u) = φ(u)`` — the standard normal density.

    Probably the second most common weighting function (paper footnote 1).
    Infinite support: ``M(X_i)`` is always 1 and the fast grid search does
    not apply.
    """

    name = "gaussian"
    support_radius = math.inf
    poly_terms = None
    roughness = 1.0 / (2.0 * math.sqrt(math.pi))
    second_moment = 1.0

    _NORM = 1.0 / math.sqrt(2.0 * math.pi)

    def _weight_on_support(self, u: np.ndarray) -> np.ndarray:
        return self._NORM * np.exp(-0.5 * u * u)
