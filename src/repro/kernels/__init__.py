"""Kernel weighting functions ``K(u)`` for regression and density work.

The Epanechnikov kernel is the paper's choice (eq. 3); the others round
out the standard toolbox.  Kernels with :attr:`Kernel.poly_terms` support
the fast sorted grid search of paper §III.
"""

from repro.kernels.base import Kernel, PolyTerm
from repro.kernels.polynomial import (
    BiweightKernel,
    EpanechnikovKernel,
    TriangularKernel,
    TricubeKernel,
    TriweightKernel,
    UniformKernel,
)
from repro.kernels.registry import (
    KERNEL_REGISTRY,
    fast_grid_kernels,
    get_kernel,
    list_kernels,
    register_kernel,
)
from repro.kernels.smooth import CosineKernel, GaussianKernel

__all__ = [
    "KERNEL_REGISTRY",
    "Kernel",
    "PolyTerm",
    "BiweightKernel",
    "CosineKernel",
    "EpanechnikovKernel",
    "GaussianKernel",
    "TriangularKernel",
    "TricubeKernel",
    "TriweightKernel",
    "UniformKernel",
    "fast_grid_kernels",
    "get_kernel",
    "list_kernels",
    "register_kernel",
]
