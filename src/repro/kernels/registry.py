"""Kernel registry and lookup.

Kernels are stateless, so the registry holds shared singleton instances.
``get_kernel`` accepts either a name or an existing :class:`Kernel`
instance, which lets every public API take ``kernel="epanechnikov"`` or a
custom subclass interchangeably.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.exceptions import ValidationError
from repro.kernels.base import Kernel
from repro.kernels.polynomial import (
    BiweightKernel,
    EpanechnikovKernel,
    TriangularKernel,
    TricubeKernel,
    TriweightKernel,
    UniformKernel,
)
from repro.kernels.smooth import CosineKernel, GaussianKernel

__all__ = [
    "KERNEL_REGISTRY",
    "get_kernel",
    "register_kernel",
    "list_kernels",
    "fast_grid_kernels",
]

KERNEL_REGISTRY: Dict[str, Kernel] = {}


def register_kernel(kernel: Kernel, *, overwrite: bool = False) -> Kernel:
    """Add a kernel instance to the registry under ``kernel.name``."""
    if not isinstance(kernel, Kernel):
        raise ValidationError(f"expected a Kernel instance, got {kernel!r}")
    if kernel.name in KERNEL_REGISTRY and not overwrite:
        raise ValidationError(f"kernel {kernel.name!r} is already registered")
    KERNEL_REGISTRY[kernel.name] = kernel
    return kernel


for _cls in (
    EpanechnikovKernel,
    UniformKernel,
    TriangularKernel,
    BiweightKernel,
    TriweightKernel,
    TricubeKernel,
    CosineKernel,
    GaussianKernel,
):
    register_kernel(_cls())


def get_kernel(kernel: str | Kernel) -> Kernel:
    """Resolve a kernel by name or pass an instance through."""
    if isinstance(kernel, Kernel):
        return kernel
    if isinstance(kernel, str):
        try:
            return KERNEL_REGISTRY[kernel.lower()]
        except KeyError:
            known = ", ".join(sorted(KERNEL_REGISTRY))
            raise ValidationError(
                f"unknown kernel {kernel!r}; known kernels: {known}"
            ) from None
    raise ValidationError(f"kernel must be a name or Kernel instance, got {kernel!r}")


def list_kernels() -> list[str]:
    """Registered kernel names, sorted."""
    return sorted(KERNEL_REGISTRY)


def fast_grid_kernels() -> Iterable[str]:
    """Names of kernels eligible for the sorted prefix-sum grid search."""
    return sorted(
        name for name, k in KERNEL_REGISTRY.items() if k.supports_fast_grid
    )
