"""Kernel weighting function abstraction.

The fast sorted grid search (paper §III) hinges on one structural fact
about the Epanechnikov kernel: on its support, the weight is a *polynomial
in the scaled distance* ``u = d / h``.  Then each term of the weighted sums
factors as ``c_j · d^{p_j} / h^{p_j}``, so per-observation running sums of
``d^{p_j}`` and ``Y·d^{p_j}`` over the distance-sorted neighbours are
enough to evaluate the leave-one-out estimator for *every* bandwidth in a
grid in one sweep.  The paper's footnote 1 points out the same trick works
for the Uniform and Triangular kernels; here it is generalised to any
kernel declaring :attr:`Kernel.poly_terms` (Biweight, Triweight and Tricube
qualify too).  The Gaussian has infinite support and no polynomial form —
it reports ``poly_terms = None`` and selectors route it through the dense
path, which (as the footnote also notes) needs no sort at all.

Kernels are *stateless singletons*: construct once, reuse everywhere, and
all evaluation methods are vectorised over numpy arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["Kernel", "PolyTerm"]


@dataclass(frozen=True)
class PolyTerm:
    """One term ``coefficient · |u|^power`` of a compact kernel's weight.

    ``power`` may be any non-negative integer (Triangular uses the odd
    power 1, Tricube uses 3, 6 and 9).
    """

    coefficient: float
    power: int

    def __post_init__(self) -> None:
        if self.power < 0:
            raise ValueError(f"power must be >= 0, got {self.power}")


class Kernel:
    """Base class for kernel weighting functions ``K(u)``.

    Subclasses implement :meth:`_weight_on_support` for ``|u| <= radius``
    (or everywhere, for infinite-support kernels) and declare the metadata
    the selectors and rules of thumb need:

    ``support_radius``
        Half-width of the support; ``math.inf`` for the Gaussian.
    ``poly_terms``
        Polynomial expansion on the support (see :class:`PolyTerm`), or
        ``None`` when the kernel is not polynomial — such kernels cannot
        use the sorted prefix-sum grid search.
    ``roughness``
        ``R(K) = ∫ K(u)² du``, used by plug-in rules of thumb.
    ``second_moment``
        ``κ₂(K) = ∫ u² K(u) du``, ditto.
    ``canonical_bandwidth``
        ``δ₀ = (R(K) / κ₂²)^{1/5}`` — Marron–Nolan canonical bandwidth,
        used to translate bandwidths between kernels.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"
    support_radius: float = math.inf
    poly_terms: Tuple[PolyTerm, ...] | None = None
    roughness: float = float("nan")
    second_moment: float = float("nan")

    def _weight_on_support(self, u: np.ndarray) -> np.ndarray:
        """Kernel weight for points already known to be on the support."""
        raise NotImplementedError

    def __call__(self, u: np.ndarray | float) -> np.ndarray:
        """Evaluate ``K(u)`` elementwise (zero off the support)."""
        arr = np.asarray(u, dtype=float)
        if math.isinf(self.support_radius):
            return self._weight_on_support(arr)
        out = np.zeros_like(arr)
        mask = np.abs(arr) <= self.support_radius
        if np.any(mask):
            out[mask] = self._weight_on_support(arr[mask])
        return out

    # -- metadata helpers -------------------------------------------------

    @property
    def has_compact_support(self) -> bool:
        """True when the weight vanishes outside a finite interval."""
        return math.isfinite(self.support_radius)

    @property
    def supports_fast_grid(self) -> bool:
        """True when the sorted prefix-sum grid search applies."""
        return self.has_compact_support and self.poly_terms is not None

    @property
    def canonical_bandwidth(self) -> float:
        """Marron–Nolan canonical bandwidth ``δ₀ = (R(K)/κ₂²)^{1/5}``."""
        return (self.roughness / self.second_moment**2) ** 0.2

    def efficiency(self) -> float:
        """Asymptotic efficiency relative to the Epanechnikov kernel.

        Defined through ``C(K) = (R(K)⁴ κ₂²)^{1/5}``; the Epanechnikov
        minimises it, so values are >= 1 and close to 1 for all standard
        kernels (the classic result behind "kernel choice barely matters").
        """
        c_self = (self.roughness**4 * self.second_moment**2) ** 0.2
        # Epanechnikov constants: R = 3/5, κ₂ = 1/5.
        c_epa = ((3.0 / 5.0) ** 4 * (1.0 / 5.0) ** 2) ** 0.2
        return c_self / c_epa

    def poly_weight(self, u: np.ndarray) -> np.ndarray:
        """Evaluate the polynomial expansion directly (testing hook).

        Must agree with ``__call__`` on the support; the property tests
        assert exactly that.
        """
        if self.poly_terms is None:
            raise NotImplementedError(f"{self.name} kernel has no polynomial form")
        arr = np.abs(np.asarray(u, dtype=float))
        out = np.zeros_like(arr)
        mask = arr <= self.support_radius
        total = np.zeros_like(arr[mask])
        for term in self.poly_terms:
            total += term.coefficient * arr[mask] ** term.power
        out[mask] = total
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Kernel) and other.name == self.name

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))
