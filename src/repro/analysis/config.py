"""Project-layout configuration for the lint rules.

Module-scoped rules (hot-path allocation, API validation, device
determinism) decide whether they apply to a file by matching its path
*relative to the package root* against glob patterns.  The defaults
below encode this repository's layout; tests construct custom configs to
exercise rules against fixture snippets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fnmatch import fnmatch
from typing import Any, Mapping

__all__ = ["LintConfig", "DEFAULT_CONFIG"]


def _tuple(values: Any) -> tuple[str, ...]:
    return tuple(str(v) for v in values)


@dataclass(frozen=True)
class LintConfig:
    """Knobs shared by the rule set.

    Path patterns are ``fnmatch`` globs matched against the
    package-relative posix path (e.g. ``core/fastgrid.py``).
    """

    # -- module classification --------------------------------------------
    #: O(n²)-sweep modules where per-iteration allocation is a perf bug.
    hot_path_modules: tuple[str, ...] = (
        "core/fastgrid.py",
        "core/loocv.py",
        "kde/lscv.py",
        "gpusim/*.py",
        "cuda_port/*.py",
    )
    #: Public entry-point modules whose array args must be validated.
    api_modules: tuple[str, ...] = (
        "core/api.py",
        "kde/*.py",
        "regression/*.py",
        "multivariate/*.py",
    )
    #: Simulated-device modules that must stay deterministic.
    gpu_modules: tuple[str, ...] = (
        "gpusim/*.py",
        "cuda_port/*.py",
    )
    #: ROB001: layers allowed to absorb broad exceptions.  The resilience
    #: layer classifies them by REPRO_* code into retry/degrade/propagate;
    #: the two serving boundary modules convert every fault into a typed
    #: per-request outcome (an HTTP status / a failed future) instead of
    #: crashing the shared event loop.
    #: The distributed coordinator is the fleet's classification layer:
    #: dispatch threads route arbitrary transport failures into the
    #: delivery queue for code-based retry/degrade decisions.
    #: The compiled capability probe is the same shape one layer down: it
    #: classifies *any* numba import failure (missing module, broken LLVM
    #: bindings, ABI mismatch) into a typed ``Capability`` verdict whose
    #: ``reason`` preserves the original error — nothing is swallowed.
    resilience_modules: tuple[str, ...] = (
        "resilience/*.py",
        "serving/scheduler.py",
        "serving/server.py",
        "distributed/coordinator.py",
        "compiled/capability.py",
    )
    #: SRV001: event-loop modules where blocking calls stall all requests.
    serving_modules: tuple[str, ...] = ("serving/*.py",)
    #: DTY001-3: modules whose dtype flow is contract, not convenience —
    #: the float32 fast path (ROADMAP 1) must *choose* every precision
    #: change.  cuda_port/gpusim are excluded: narrowing to float32 there
    #: IS the paper's single-precision ablation.
    dtype_guard_modules: tuple[str, ...] = (
        "core/*.py",
        "kde/*.py",
        "multivariate/*.py",
        "utils/*.py",
    )
    #: DET001/002: reduction-path modules where iteration order is part
    #: of the bit-identical-fold contract the distributed layer inherits.
    determinism_modules: tuple[str, ...] = (
        "core/*.py",
        "kde/*.py",
        "multivariate/*.py",
        "utils/*.py",
        "parallel/*.py",
        "resilience/*.py",
    )
    #: DET002 additionally covers the serving fan-in.
    collection_modules: tuple[str, ...] = (
        "parallel/*.py",
        "resilience/*.py",
        "serving/*.py",
        "core/*.py",
    )
    #: CON001-3: modules that own process/shared-memory lifecycles.
    concurrency_modules: tuple[str, ...] = (
        "parallel/*.py",
        "resilience/*.py",
        "serving/*.py",
        "core/*.py",
        "obs/*.py",
    )

    # -- NUM004: allocations that must name their dtype -------------------
    explicit_dtype_calls: tuple[str, ...] = (
        "numpy.empty",
        "numpy.zeros",
        "numpy.ones",
        "numpy.full",
    )

    # -- NUM003: allocating calls that may not sit inside a loop ----------
    loop_allocation_calls: tuple[str, ...] = (
        "numpy.empty",
        "numpy.zeros",
        "numpy.ones",
        "numpy.full",
        "numpy.arange",
        "numpy.concatenate",
        "numpy.stack",
        "numpy.vstack",
        "numpy.hstack",
        "numpy.column_stack",
    )

    # -- OBS001: tracing calls that may not sit inside a hot loop ---------
    #: Terminal names of the ``repro.obs`` recording primitives.  A call
    #: whose last dotted segment matches (``tracer.span``,
    #: ``current_tracer``, ``t.counter``…) inside a For/While of a
    #: hot-path module is a per-iteration clock read + ring-buffer append.
    tracing_call_names: tuple[str, ...] = (
        "span",
        "counter",
        "record_max",
        "current_tracer",
        "use_tracer",
    )

    # -- NUM002: the validation funnel ------------------------------------
    #: Terminal names of the helpers in ``repro.utils.validation`` /
    #: ``repro.multivariate.validation`` that count as validating.
    validator_names: tuple[str, ...] = (
        "as_float_array",
        "check_paired_samples",
        "ensure_bandwidths",
        "check_positive_int",
        "check_probability",
        "as_design_matrix",
        "check_multivariate_sample",
        "ensure_bandwidth_vector",
    )
    #: Parameter names that signal "this argument is a data array".
    array_param_names: tuple[str, ...] = ("x", "y", "at", "data", "bandwidths")

    # -- PAR001: process-pool submission points ---------------------------
    pool_method_names: tuple[str, ...] = (
        "map",
        "starmap",
        "sum_over_blocks",
        "apply",
        "apply_async",
        "imap",
        "imap_unordered",
    )
    #: A method call counts as a pool submission when the receiver's
    #: dotted name contains one of these substrings (case-insensitive).
    pool_receiver_hints: tuple[str, ...] = ("pool",)
    #: Free functions that take a work-unit callable as first argument.
    pool_function_names: tuple[str, ...] = ("parallel_sum",)

    # -- SRV001: calls that must not run on the serving event loop --------
    serving_blocking_calls: tuple[str, ...] = (
        "time.sleep",
        "subprocess.run",
        "subprocess.check_call",
        "subprocess.check_output",
        "urllib.request.urlopen",
        "socket.create_connection",
        "requests.get",
        "requests.post",
    )

    # -- ROB002: network calls that must carry an explicit timeout --------
    #: Canonical dotted names of socket/HTTP client entry points that
    #: block forever by default.  Every call must pass ``timeout=`` (any
    #: value, including an explicit None — the point is that unbounded
    #: blocking is a *decision*, not a default).
    timeout_required_calls: tuple[str, ...] = (
        "socket.create_connection",
        "urllib.request.urlopen",
        "http.client.HTTPConnection",
        "http.client.HTTPSConnection",
        "xmlrpc.client.ServerProxy",
        "requests.get",
        "requests.post",
        "requests.put",
        "requests.delete",
        "requests.request",
    )

    # -- GPU001: nondeterminism sources banned on the device --------------
    banned_call_prefixes: tuple[str, ...] = ("time.", "random.")
    #: ``numpy.random.*`` members that are allowed (seeded construction).
    allowed_numpy_random: tuple[str, ...] = (
        "Generator",
        "SeedSequence",
        "default_rng",  # only with an explicit seed; the rule checks args
    )

    # -- DET003: seeded-RNG discipline ------------------------------------
    #: Modules where every random stream must derive from an explicit
    #: seed (``repro.utils.rng``).  Library-wide by default — the bagged
    #: selector's bit-for-bit claim is only as strong as the least
    #: disciplined draw site.  Tests are exempt simply because the lint
    #: scans the package, not the test tree.
    seeded_rng_modules: tuple[str, ...] = ("*",)

    # -- DET001: order-sensitive reduction sinks --------------------------
    #: Terminal names of the strict-fold primitives: any value that
    #: reaches one of these must arrive in deterministic order.
    fold_call_names: tuple[str, ...] = ("fold_rows", "compensated_sum")

    # -- DET002: completion-order collection primitives -------------------
    unordered_collection_calls: tuple[str, ...] = (
        "imap_unordered",
        "as_completed",
    )

    # -- CON001/002: resource-owning constructors -------------------------
    #: Terminal (class.method or class) names that allocate a shared
    #: memory segment the caller must close+unlink on every path.
    shm_create_call_names: tuple[str, ...] = (
        "SharedMemory",
        "ShmWorkspace.create",
        "SharedArray.create",
    )
    #: Pool classes whose instances need with/try-finally lifecycles.
    pool_class_names: tuple[str, ...] = ("WorkerPool",)

    # -- CON003: fork-safety and lock discipline --------------------------
    #: Receiver-name substrings treated as locks for join-under-lock.
    lock_name_hints: tuple[str, ...] = ("lock", "mutex")

    # -- misc --------------------------------------------------------------
    #: Extra per-rule disables applied before CLI --select/--ignore.
    disabled_rules: tuple[str, ...] = field(default_factory=tuple)

    def matches(self, rel_path: str, patterns: tuple[str, ...]) -> bool:
        """Whether ``rel_path`` (posix, package-relative) matches any glob."""
        return any(fnmatch(rel_path, pat) for pat in patterns)

    def with_overrides(self, **overrides: Any) -> "LintConfig":
        """A copy with the given fields replaced (tuples coerced)."""
        clean = {
            key: _tuple(value) if isinstance(value, (list, tuple, set)) else value
            for key, value in overrides.items()
        }
        return replace(self, **clean)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "LintConfig":
        """Build a config from e.g. a parsed ``[tool.repro-lint]`` table."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(mapping) - known
        if unknown:
            raise ValueError(f"unknown repro-lint config keys: {sorted(unknown)}")
        return DEFAULT_CONFIG.with_overrides(**dict(mapping))


DEFAULT_CONFIG = LintConfig()
