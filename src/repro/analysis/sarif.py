"""SARIF 2.1.0 export for repro-lint findings.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what code-scanning UIs ingest — the CI ``lint-dataflow`` job uploads
this file so findings annotate the PR diff instead of living in a build
log.  Only the small subset of the format we need is emitted: one run, the
tool's rule catalogue (id + short/full description), and one ``result``
per finding with a physical location.

The golden-file test validates this output against a vendored, trimmed
copy of the official 2.1.0 schema, so the emitted shape is pinned by
more than convention.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from repro.analysis.baseline import _normalise
from repro.analysis.findings import SYNTAX_RULE_ID, Finding
from repro.analysis.rules import RULE_REGISTRY

__all__ = ["render_sarif", "sarif_document"]

_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: The unparsable-file pseudo-rule is not in the registry but must still
#: be a declared rule for ``ruleIndex`` to resolve.
_SYNTAX_RULE_DESCRIPTION = (
    "File could not be parsed as Python; no other rule ran on it."
)


def _rule_catalogue(extra_ids: Iterable[str]) -> list[dict[str, Any]]:
    """The ``tool.driver.rules`` array: every registered rule, sorted,
    plus any pseudo-rules that actually occur in the findings."""
    rules: list[dict[str, Any]] = []
    for rule_id in sorted(RULE_REGISTRY):
        cls = RULE_REGISTRY[rule_id]
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {"text": cls.summary},
                "fullDescription": {"text": cls.rationale},
                "defaultConfiguration": {"level": "error"},
            }
        )
    if SYNTAX_RULE_ID in set(extra_ids):
        rules.append(
            {
                "id": SYNTAX_RULE_ID,
                "shortDescription": {"text": "unparsable file"},
                "fullDescription": {"text": _SYNTAX_RULE_DESCRIPTION},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return rules


def sarif_document(
    findings: Sequence[Finding], *, baselined: Sequence[Finding] = ()
) -> dict[str, Any]:
    """The SARIF log as a plain dict (``render_sarif`` serialises it).

    ``baselined`` findings are included with ``baselineState:
    "unchanged"`` so scanners show the frozen debt without failing on
    it; new findings carry ``baselineState: "new"`` only when a baseline
    was in play (i.e. ``baselined`` given).
    """
    rules = _rule_catalogue({f.rule_id for f in findings} | {
        f.rule_id for f in baselined
    })
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    has_baseline = bool(baselined)

    def result(finding: Finding, state: str | None) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "ruleId": finding.rule_id,
            "ruleIndex": rule_index[finding.rule_id],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _normalise(finding.path),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            # SARIF columns are 1-based; ours are 0-based.
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if state is not None:
            entry["baselineState"] = state
        return entry

    results = [
        result(f, "new" if has_baseline else None) for f in findings
    ] + [result(f, "unchanged") for f in baselined]
    return {
        "$schema": _SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding], *, baselined: Sequence[Finding] = ()
) -> str:
    """Serialised SARIF log, newline-terminated."""
    return (
        json.dumps(
            sarif_document(findings, baselined=baselined),
            indent=2,
            ensure_ascii=False,
        )
        + "\n"
    )
