"""Project-aware static analysis (``repro-lint``).

An AST-based lint framework tuned to the failure modes of this
reproduction: numerical-correctness hazards (exact float equality around
the CV argmin, implicit dtypes that break the float32/float64 ablation),
hot-path hygiene (allocations inside the O(n²) sweep loops), and
parallel/device safety (unpicklable work units, nondeterministic
simulated kernels).

Since PR 6 the engine is *whole-program*: every lint run builds one
:class:`~repro.analysis.project.ProjectIndex` (symbol table + call
graph) over the linted tree, and the dtype-propagation lattice in
:mod:`repro.analysis.dtypeflow` resolves calls across module boundaries
through per-function summaries.  That powers three cross-module rule
families: **DTY** (dtype flow: silent narrowing, mixed-width
accumulation, redundant casts), **DET** (determinism: unordered
iteration into the strict folds, completion-order collection), and
**CON** (concurrency lifecycles: shm segments, worker pools, fork
safety).

Public surface:

* :class:`~repro.analysis.engine.LintEngine` — parse + rule dispatch
* :class:`~repro.analysis.project.ProjectIndex` — symbol table/call graph
* :class:`~repro.analysis.config.LintConfig` — project layout knobs
* :class:`~repro.analysis.findings.Finding` — one diagnostic
* :class:`~repro.analysis.baseline.Baseline` — the CI ratchet
* :func:`~repro.analysis.sarif.render_sarif` — SARIF 2.1.0 export
* :func:`~repro.analysis.rules.default_rules` / ``RULE_REGISTRY``
* :mod:`repro.analysis.cli` — the ``repro-lint`` console script

Suppress a finding in source with a trailing comment::

    den != 0.0  # repro-lint: disable=NUM001

or for a whole file with ``# repro-lint: disable-file=RULE`` on any line.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.config import LintConfig
from repro.analysis.engine import LintEngine, ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectIndex
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import RULE_REGISTRY, Rule, default_rules
from repro.analysis.sarif import render_sarif

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintEngine",
    "ModuleContext",
    "ProjectIndex",
    "RULE_REGISTRY",
    "Rule",
    "default_rules",
    "render_json",
    "render_sarif",
    "render_text",
]
