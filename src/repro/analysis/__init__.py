"""Project-aware static analysis (``repro-lint``).

A small AST-based lint framework tuned to the failure modes of this
reproduction: numerical-correctness hazards (exact float equality around
the CV argmin, implicit dtypes that break the float32/float64 ablation),
hot-path hygiene (allocations inside the O(n²) sweep loops), and
parallel/device safety (unpicklable work units, nondeterministic
simulated kernels).

Public surface:

* :class:`~repro.analysis.engine.LintEngine` — parse + rule dispatch
* :class:`~repro.analysis.config.LintConfig` — project layout knobs
* :class:`~repro.analysis.findings.Finding` — one diagnostic
* :func:`~repro.analysis.rules.default_rules` / ``RULE_REGISTRY``
* :mod:`repro.analysis.cli` — the ``repro-lint`` console script

Suppress a finding in source with a trailing comment::

    den != 0.0  # repro-lint: disable=NUM001

or for a whole file with ``# repro-lint: disable-file=RULE`` on any line.
"""

from __future__ import annotations

from repro.analysis.config import LintConfig
from repro.analysis.engine import LintEngine, ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import RULE_REGISTRY, Rule, default_rules

__all__ = [
    "Finding",
    "LintConfig",
    "LintEngine",
    "ModuleContext",
    "RULE_REGISTRY",
    "Rule",
    "default_rules",
    "render_json",
    "render_text",
]
