"""``# repro-lint: disable=RULE`` suppression comments.

Two forms, both parsed with a single regex over the raw source lines (no
tokenizer round-trip needed — the marker is unambiguous enough that a
string occurrence inside a literal would be a deliberate oddity):

* ``# repro-lint: disable=NUM001`` (or ``disable=NUM001,PAR001`` or
  ``disable=all``) — suppresses matching findings reported *on that
  physical line*.
* ``# repro-lint: disable-file=NUM003`` — suppresses the rule for the
  whole file, from any line.

The syntax-error pseudo-rule (``E901``) is never suppressible.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.analysis.findings import SYNTAX_RULE_ID, Finding

__all__ = ["SuppressionIndex"]

_MARKER = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable-file|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

_ALL = "all"


@dataclass
class SuppressionIndex:
    """Per-file map of suppressed rules, by line and file-wide."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Scan ``source`` for suppression comments."""
        index = cls()
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "repro-lint" not in text:
                continue
            for match in _MARKER.finditer(text):
                rules = {r.strip() for r in match.group("rules").split(",")}
                if match.group("scope") == "disable-file":
                    index.file_wide |= rules
                else:
                    index.by_line.setdefault(lineno, set()).update(rules)
        return index

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether ``finding`` is silenced by a comment."""
        if finding.rule_id == SYNTAX_RULE_ID:
            return False
        if _ALL in self.file_wide or finding.rule_id in self.file_wide:
            return True
        line_rules = self.by_line.get(finding.line)
        if not line_rules:
            return False
        return _ALL in line_rules or finding.rule_id in line_rules
