"""Rule protocol and registry."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Type

import ast

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding

__all__ = ["Rule", "RULE_REGISTRY", "register_rule", "default_rules"]

RULE_REGISTRY: dict[str, Type["Rule"]] = {}


class Rule(ABC):
    """One lint rule.

    Subclasses set ``rule_id``, ``summary`` (one line, shown by
    ``--list-rules``) and ``rationale`` (why the pattern corrupts the
    reproduction — surfaced in DESIGN.md and the JSON reporter), then
    implement :meth:`check`.
    """

    rule_id: str = ""
    summary: str = ""
    rationale: str = ""

    def applies_to(self, ctx: ModuleContext) -> bool:
        """Module-scoped rules override this to restrict themselves."""
        return True

    @abstractmethod
    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        """Yield findings for one module."""

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Convenience constructor anchored at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding the rule to :data:`RULE_REGISTRY`."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    return [RULE_REGISTRY[rule_id]() for rule_id in sorted(RULE_REGISTRY)]
