"""Rule registry: importing this package registers every built-in rule."""

from __future__ import annotations

from repro.analysis.rules.base import RULE_REGISTRY, Rule, default_rules, register_rule
from repro.analysis.rules.api import ValidationFunnelRule
from repro.analysis.rules.concurrency import (
    ForkSafetyRule,
    PoolLifecycleRule,
    ShmLifecycleRule,
)
from repro.analysis.rules.determinism import (
    UnorderedCollectionRule,
    UnorderedFoldRule,
)
from repro.analysis.rules.dtype_flow import (
    MixedAccumulationRule,
    RedundantCastRule,
    SilentNarrowingRule,
)
from repro.analysis.rules.gpu import DeviceDeterminismRule
from repro.analysis.rules.hotpath import LoopAllocationRule
from repro.analysis.rules.numeric import ExplicitDtypeRule, FloatEqualityRule
from repro.analysis.rules.obs import LoopTracingRule
from repro.analysis.rules.parallel import PicklableWorkUnitRule
from repro.analysis.rules.robustness import BroadExceptRule, NoTimeoutRule
from repro.analysis.rules.serving import AsyncBlockingCallRule

__all__ = [
    "RULE_REGISTRY",
    "Rule",
    "default_rules",
    "register_rule",
    "FloatEqualityRule",
    "ValidationFunnelRule",
    "LoopAllocationRule",
    "LoopTracingRule",
    "ExplicitDtypeRule",
    "PicklableWorkUnitRule",
    "DeviceDeterminismRule",
    "BroadExceptRule",
    "NoTimeoutRule",
    "AsyncBlockingCallRule",
    "SilentNarrowingRule",
    "MixedAccumulationRule",
    "RedundantCastRule",
    "UnorderedFoldRule",
    "UnorderedCollectionRule",
    "ShmLifecycleRule",
    "PoolLifecycleRule",
    "ForkSafetyRule",
]
