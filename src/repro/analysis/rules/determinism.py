"""Determinism rules: DET001 (unordered iteration into a strict fold),
DET002 (completion-order collection primitives), DET003 (process-global
or unseeded RNG in library code).

The whole library's cross-backend story rests on one contract
(``utils/numeric.fold_rows``): partial results are folded **in index
order**, so the CV curve is bit-identical at every worker count and
block size.  Floating-point addition is not associative — feeding the
fold from a container whose iteration order is not the index order
(sets; dicts filled in completion order) silently re-associates the sum
and the differential harness starts flagging one-ULP drifts that no
unit test pins down.

DET001 uses the dtype lattice for its one exemption: integer folds are
exact, so summing ``nbytes`` over a dict is fine — order only matters
once a float enters the accumulation.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.dtypeflow import (
    DType,
    FunctionAnalysis,
    analyse_function,
    analyse_module_level,
)
from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, register_rule

__all__ = ["SeededRngRule", "UnorderedCollectionRule", "UnorderedFoldRule"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: dict/set view methods whose iteration order follows the container's.
_VIEW_METHODS = frozenset({"keys", "values", "items"})


def _terminal_name(ctx: ModuleContext, call: ast.Call) -> str | None:
    """Last dotted segment of the called name (``pool.imap_unordered`` →
    ``imap_unordered``)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


class _OrderTracker:
    """Names bound to unordered containers within one scope.

    A flow-insensitive approximation: one pass collects every name
    assigned an unordered expression anywhere in the scope.  Rebinding a
    name to something ordered does not clear it — acceptable here
    because the rule's job is "this value *may* arrive in hash/completion
    order", and the fix (``sorted(...)``) is cheap.
    """

    def __init__(self, ctx: ModuleContext, scope: ast.AST):
        self.ctx = ctx
        self.unordered: set[str] = set()
        # Iterate to a fixed point so ``a = {…}; b = a`` marks both.
        changed = True
        while changed:
            changed = False
            for node in ast.walk(scope):
                if not isinstance(node, ast.Assign):
                    continue
                if not self._is_unordered(node.value):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id not in self.unordered:
                        self.unordered.add(target.id)
                        changed = True

    def _is_unordered(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.unordered
        if isinstance(node, ast.Call):
            name = self.ctx.canonical_name(node.func)
            if name in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _VIEW_METHODS
                and self._is_unordered(node.func.value)
            ):
                return True
        return False

    def iteration_is_unordered(self, node: ast.expr) -> bool:
        """Whether iterating ``node`` yields elements in unstable order.

        Sets always; dict *views* only when the dict itself is marked
        unordered (dicts preserve insertion order — the hazard is a dict
        *filled* in completion order, which DET002 catches at the fill).
        """
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.unordered
        if isinstance(node, ast.Call):
            name = self.ctx.canonical_name(node.func)
            if name in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _VIEW_METHODS
            ):
                return self._is_unordered(node.func.value)
        return False


def _scopes(ctx: ModuleContext) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """(scope node, body) for the module and every function in it."""
    yield ctx.tree, [
        stmt
        for stmt in ctx.tree.body
        if not isinstance(stmt, _FUNC_NODES + (ast.ClassDef,))
    ]
    for node in ast.walk(ctx.tree):
        if isinstance(node, _FUNC_NODES):
            yield node, node.body


def _walk_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function scopes
    (each nested def is visited by its own :func:`_scopes` entry)."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _FUNC_NODES + (ast.Lambda,)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _analysis_for(
    ctx: ModuleContext, scope: ast.AST
) -> FunctionAnalysis | None:
    """Dtype analysis of ``scope`` (None when the module has no index)."""
    if ctx.module_info is None:
        return None
    if isinstance(scope, _FUNC_NODES):
        return analyse_function(scope, ctx.module_info, ctx.project)
    return analyse_module_level(ctx.module_info, ctx.project)


def _all_int(analysis: FunctionAnalysis | None, call: ast.Call) -> bool:
    """Whether every argument of ``call`` is provably integer.

    Integer addition is exact and associative, so order-of-arrival does
    not change an int fold; only float folds are order-sensitive.
    """
    if analysis is None or not call.args:
        return False
    return all(
        analysis.dtype_of(arg) is DType.INT
        for arg in call.args
        if not isinstance(arg, (ast.GeneratorExp, ast.ListComp))
    ) and all(
        analysis.dtype_of(arg.elt) is DType.INT
        for arg in call.args
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp))
    )


@register_rule
class UnorderedFoldRule(Rule):
    """DET001 — strict-fold inputs must not come from unordered iteration.

    ``fold_rows``/``compensated_sum`` exist to make float reductions
    bit-reproducible; iterating a set (hash order) or a completion-filled
    dict on the way in re-associates the sum per run.
    """

    rule_id = "DET001"
    summary = "set/dict-order iteration feeds a strict float fold"
    rationale = (
        "fold_rows/compensated_sum are order contracts: float addition "
        "is non-associative, so hash- or completion-ordered inputs give "
        "a different bit pattern per run and break the partition-"
        "invariant CV curve (ROADMAP item 2).  Iterate sorted(...) or "
        "index order instead.  Provably-integer folds are exempt: int "
        "addition is exact."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_modules(ctx.config.determinism_modules)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        fold_names = set(ctx.config.fold_call_names)
        for scope, body in _scopes(ctx):
            tracker = _OrderTracker(ctx, scope)
            analysis: FunctionAnalysis | None = None
            analysed = False
            for node in _walk_scope(body):
                fold_call = self._fold_fed_unordered(
                    ctx, tracker, node, fold_names
                )
                if fold_call is None:
                    continue
                if not analysed:
                    analysis = _analysis_for(ctx, scope)
                    analysed = True
                if _all_int(analysis, fold_call):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    "strict fold fed from unordered iteration; float "
                    "folds are order contracts — iterate sorted(...) "
                    "or index order",
                )

    def _fold_fed_unordered(
        self,
        ctx: ModuleContext,
        tracker: _OrderTracker,
        node: ast.AST,
        fold_names: set[str],
    ) -> ast.Call | None:
        """The offending fold call under ``node``, if any.

        Two shapes: a for-loop over an unordered source whose body calls
        a fold, and a fold call whose argument is (or iterates) an
        unordered container.
        """
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if not tracker.iteration_is_unordered(node.iter):
                return None
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Call)
                    and _terminal_name(ctx, sub) in fold_names
                ):
                    return sub
            return None
        if isinstance(node, ast.Call) and _terminal_name(ctx, node) in fold_names:
            for arg in node.args:
                if tracker.iteration_is_unordered(arg):
                    return node
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                    if any(
                        tracker.iteration_is_unordered(gen.iter)
                        for gen in arg.generators
                    ):
                        return node
        return None


@register_rule
class SeededRngRule(Rule):
    """DET003 — library randomness must derive from an explicit seed.

    Every replayable contract in the repo — the bagged subsample draws,
    fault-injection schedules, chaos transports, retry jitter — rests on
    streams that are pure functions of a root seed
    (:mod:`repro.utils.rng`).  ``np.random.seed()`` mutates hidden
    process-global state that any import can clobber, and a no-argument
    ``default_rng()`` reseeds from the OS on every call; either one in a
    library module makes a "same seed, same answer" claim unverifiable.
    GPU/device modules are covered by GPU001's stricter variant of the
    same check and are excluded here to keep findings single-sourced.
    """

    rule_id = "DET003"
    summary = "process-global or unseeded numpy RNG in library code"
    rationale = (
        "np.random.seed() mutates shared global state and argless "
        "default_rng() seeds from the OS — both break the bit-for-bit "
        "replay contracts (bagged draws, fault schedules, chaos "
        "transports).  Derive streams from an explicit root via "
        "repro.utils.rng (derive_rng / spawn_seeds) instead."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        # GPU001 already polices device modules (with a wider net);
        # excluding them here keeps each draw site to one finding.
        return ctx.in_modules(ctx.config.seeded_rng_modules) and not ctx.in_modules(
            ctx.config.gpu_modules
        )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.call_name(node)
            if name == "numpy.random.seed":
                yield self.finding(
                    ctx,
                    node,
                    "np.random.seed() mutates the process-global RNG any "
                    "import can clobber; derive a stream from an explicit "
                    "root with repro.utils.rng instead",
                )
            elif (
                name == "numpy.random.default_rng"
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    ctx,
                    node,
                    "default_rng() without a seed draws fresh OS entropy "
                    "per call; pass a seed (e.g. repro.utils.rng."
                    "spawn_seed) so the stream replays",
                )


@register_rule
class UnorderedCollectionRule(Rule):
    """DET002 — no completion-order collection in the fan-in paths.

    ``imap_unordered``/``as_completed`` yield results in *completion*
    order — scheduler noise becomes data order, and anything folded from
    it inherits a per-run bit pattern.  The repo's fan-ins (pool
    ``map_over_blocks``, the wave loop in resilience) key every partial
    by block index and fold ``sorted(...)``; new collection sites must
    do the same, starting from an ordered primitive.
    """

    rule_id = "DET002"
    summary = "completion-order collection primitive (imap_unordered/as_completed)"
    rationale = (
        "Completion order is scheduler noise; collecting with it makes "
        "the fold order — and therefore the float bit pattern — vary "
        "per run.  Use the ordered variant (imap/map) or key results by "
        "index and iterate sorted(...) before folding."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_modules(ctx.config.collection_modules)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        banned = set(ctx.config.unordered_collection_calls)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _terminal_name(ctx, node) not in banned:
                continue
            yield self.finding(
                ctx,
                node,
                f"{_terminal_name(ctx, node)}() yields results in "
                "completion order; collect ordered (imap/map) or key by "
                "index and sort before the fold",
            )
