"""Parallel safety: PAR001 (work units must be picklable)."""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, register_rule

__all__ = ["PicklableWorkUnitRule"]


def _contains_lambda(node: ast.AST) -> bool:
    return any(isinstance(sub, ast.Lambda) for sub in ast.walk(node))


@register_rule
class PicklableWorkUnitRule(Rule):
    """PAR001 — pool submissions take module-level functions only.

    ``WorkerPool`` fans work out over OS processes; lambdas and closures
    are unpicklable, so submitting one crashes at runtime — but only on
    the multiprocess path, which the serial fallback (1 worker, 1 item)
    silently skips.  The crash therefore hides until production scale.
    """

    rule_id = "PAR001"
    summary = "lambda/closure submitted to a process pool"
    rationale = (
        "multiprocessing pickles the work unit; lambdas and nested "
        "functions fail to pickle, and the serial fallback masks the "
        "crash until the pool actually fans out."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            if not self._is_pool_submission(ctx, node):
                continue
            work_unit = node.args[0]
            if _contains_lambda(work_unit):
                yield self.finding(
                    ctx,
                    node,
                    "lambda submitted to a process pool is unpicklable; "
                    "use a module-level function",
                )
            elif (
                isinstance(work_unit, ast.Name)
                and work_unit.id in ctx.nested_functions
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"nested function {work_unit.id!r} submitted to a "
                    "process pool is unpicklable; move it to module level",
                )

    @staticmethod
    def _is_pool_submission(ctx: ModuleContext, node: ast.Call) -> bool:
        cfg = ctx.config
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in cfg.pool_method_names:
            receiver = ctx.dotted_name(func.value)
            if receiver is not None:
                lowered = receiver.lower()
                return any(hint in lowered for hint in cfg.pool_receiver_hints)
            return False
        name = ctx.canonical_name(func)
        return (
            name is not None
            and name.rpartition(".")[2] in cfg.pool_function_names
        )
