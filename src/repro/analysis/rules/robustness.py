"""Robustness hygiene: ROB001 (broad excepts), ROB002 (unbounded I/O).

The resilience layer is the one place allowed to catch-and-classify
arbitrary failures: it routes them by their stable ``REPRO_*`` error code
into retry, degrade, or propagate.  Anywhere else, a broad handler that
does not re-raise turns a typed, actionable failure into a silent wrong
answer — the worst outcome for a numerical reproduction.

ROB002 guards the other half of the fault model: stdlib socket/HTTP
clients block *forever* by default, so one silent worker would hang the
distributed coordinator instead of surfacing the typed
``REPRO_SERVE_TIMEOUT`` the lease machinery classifies on.  Every
network call must make its deadline explicit.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, register_rule

__all__ = ["BroadExceptRule", "NoTimeoutRule"]

#: Exception names that catch (nearly) everything.
_BROAD_NAMES = frozenset({"Exception", "BaseException"})


@register_rule
class BroadExceptRule(Rule):
    """ROB001 — broad ``except`` without re-raise, outside the resilience layer.

    ``except:`` / ``except Exception:`` / ``except BaseException:`` may
    only appear where the handler re-raises (typically wrapping the
    original in a typed :class:`~repro.exceptions.ReproError`) or inside
    the resilience layer, whose job is exactly to classify arbitrary
    failures by error code.  A swallowing broad handler elsewhere converts
    device OOMs, worker crashes, and data corruption into silently wrong
    CV sums.
    """

    rule_id = "ROB001"
    summary = "broad except handler that swallows the exception"
    rationale = (
        "Only the resilience layer may absorb arbitrary exceptions — it "
        "classifies them by REPRO_* code into retry/degrade/propagate. "
        "Elsewhere a broad handler that does not re-raise hides worker "
        "crashes and device failures as silently wrong results."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.in_modules(ctx.config.resilience_modules)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            label = self._broad_label(ctx, node)
            if label is None:
                continue
            if self._reraises(node):
                continue
            yield self.finding(
                ctx,
                node,
                f"{label} swallows the exception; catch a typed ReproError "
                "subclass, re-raise, or move the recovery into "
                "repro.resilience",
            )

    def _broad_label(self, ctx: ModuleContext, node: ast.ExceptHandler) -> str | None:
        """The offending form, or None when the handler is narrow."""
        if node.type is None:
            return "bare 'except:'"
        exprs = (
            list(node.type.elts)
            if isinstance(node.type, ast.Tuple)
            else [node.type]
        )
        for expr in exprs:
            name = ctx.canonical_name(expr)
            if name is not None and name.rpartition(".")[2] in _BROAD_NAMES:
                return f"'except {name}'"
        return None

    @staticmethod
    def _reraises(node: ast.ExceptHandler) -> bool:
        """Whether any path in the handler body raises.

        A handler that wraps-and-raises (``raise ReproError(...) from exc``)
        or propagates (``raise``) is classification, not swallowing —
        conservative: one ``raise`` anywhere in the handler body counts,
        excluding raises inside functions *defined* in the handler.
        """
        stack: list[ast.AST] = list(node.body)
        while stack:
            child = stack.pop()
            if isinstance(child, ast.Raise):
                return True
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(child))
        return False


@register_rule
class NoTimeoutRule(Rule):
    """ROB002 — socket/HTTP client call without an explicit timeout.

    The stdlib network clients (``socket.create_connection``,
    ``urllib.request.urlopen``, ``http.client.HTTPConnection``…) block
    indefinitely when no timeout is given.  In this codebase every such
    call sits on a fault boundary — the distributed RPC client, the
    fleet heartbeat, the serving smoke tooling — where "hangs forever"
    must instead become a typed ``REPRO_SERVE_TIMEOUT`` that the lease
    and retry machinery can classify.  Passing ``timeout=None``
    explicitly is allowed: the rule bans the silent default, not an
    audited decision to wait.
    """

    rule_id = "ROB002"
    summary = "network client call without an explicit timeout"
    rationale = (
        "Default-blocking socket/HTTP calls turn a silent worker into a "
        "hung coordinator. A call that cannot complete must surface a "
        "typed REPRO_SERVE_TIMEOUT for the lease/retry machinery, so "
        "every network client call states its deadline explicitly."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        required = ctx.config.timeout_required_calls
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.call_name(node)
            if name is None or name not in required:
                continue
            if any(kw.arg == "timeout" for kw in node.keywords):
                continue
            yield self.finding(
                ctx,
                node,
                f"{name}() without an explicit timeout blocks forever on "
                "a silent peer; pass timeout= (timeout=None is accepted "
                "as a deliberate choice)",
            )
