"""API-boundary hygiene: NUM002 (array args funnel through validation)."""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, register_rule

__all__ = ["ValidationFunnelRule"]


@register_rule
class ValidationFunnelRule(Rule):
    """NUM002 — public entry points validate their array arguments.

    The numerical code assumes clean, contiguous, finite float arrays
    (validate once at the boundary, compute without checks in the hot
    loops).  A public function in an entry-point module that accepts an
    array-named parameter must call one of the validation helpers from
    ``repro.utils.validation`` / ``repro.multivariate.validation``
    somewhere in its body.

    The rule checks *module-level* public functions; methods delegate to
    functions or validate in ``fit`` and are out of scope.
    """

    rule_id = "NUM002"
    summary = "public entry point takes array args but never validates them"
    rationale = (
        "Unvalidated NaN/ragged/object arrays slip past the boundary and "
        "surface as wrong bandwidths instead of errors; every public entry "
        "point funnels arrays through the validation helpers."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_modules(ctx.config.api_modules)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        validators = frozenset(ctx.config.validator_names)
        array_names = frozenset(ctx.config.array_param_names)
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not ctx.is_public(node.name):
                continue
            params = [
                arg.arg
                for arg in (
                    *node.args.posonlyargs,
                    *node.args.args,
                    *node.args.kwonlyargs,
                )
            ]
            array_params = sorted(set(params) & array_names)
            if not array_params:
                continue
            if self._calls_validator(ctx, node, validators):
                continue
            yield self.finding(
                ctx,
                node,
                f"public entry point {node.name!r} takes array argument(s) "
                f"{', '.join(array_params)} but never calls a validation "
                "helper (as_float_array, check_paired_samples, ...)",
            )

    @staticmethod
    def _calls_validator(
        ctx: ModuleContext, func: ast.AST, validators: frozenset[str]
    ) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.canonical_name(node.func)
            if name is not None and name.rpartition(".")[2] in validators:
                return True
        return False
