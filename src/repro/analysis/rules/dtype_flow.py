"""Dtype-flow rules: DTY001 (narrowing), DTY002 (mixed accumulation),
DTY003 (redundant cast).

These are the first consumers of the whole-program dataflow layer
(:mod:`repro.analysis.project` + :mod:`repro.analysis.dtypeflow`): each
rule walks every function of the module under the intraprocedural dtype
propagation, with calls into *other* modules resolved through project
function summaries.  That is what lets DTY003 see that
``ensure_bandwidths(...)`` — defined two packages away — already returns
float64, so a trailing ``.astype(float)`` is a dead copy.

All three fire only in :attr:`LintConfig.dtype_guard_modules`:
``cuda_port``/``gpusim`` narrow to float32 *on purpose* (the paper's
single-precision ablation), and flagging the ablation itself would just
breed suppressions.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.dtypeflow import DtypeEvent, analyse_module
from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, register_rule

__all__ = [
    "MixedAccumulationRule",
    "RedundantCastRule",
    "SilentNarrowingRule",
]


def _module_events(ctx: ModuleContext) -> Iterator[DtypeEvent]:
    """Dtype events for every function (and the module level) of ``ctx``.

    Events are deduplicated by (kind, position): the two-pass loop-body
    sweep in the propagator may re-emit the same event.
    """
    if ctx.module_info is None:  # unparsable elsewhere; nothing to do
        return
    seen: set[tuple[str, int, int]] = set()
    for analysis in analyse_module(ctx.module_info, ctx.project):
        for event in analysis.events:
            key = (
                event.kind,
                getattr(event.node, "lineno", 0),
                getattr(event.node, "col_offset", 0),
            )
            if key in seen:
                continue
            seen.add(key)
            yield event


class _DtypeRule(Rule):
    """Shared scoping: dtype rules run in the guarded numerics modules."""

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_modules(ctx.config.dtype_guard_modules)


@register_rule
class SilentNarrowingRule(_DtypeRule):
    """DTY001 — no silent float64 → float32 narrowing in the numerics core.

    The float32 fast path is an *interface*: callers opt in by passing
    ``dtype="float32"`` at the boundary.  A value that the dataflow
    proves to be float64 being cast down mid-pipeline loses 29 bits of
    mantissa invisibly — the CV curve stops being comparable across
    backends and the paper's precision ablation stops meaning anything.
    """

    rule_id = "DTY001"
    summary = "provably-float64 value cast to float32 inside the numerics core"
    rationale = (
        "Narrowing mid-pipeline silently halves precision for every "
        "consumer downstream; precision changes belong at the documented "
        "dtype= boundaries so the float32 fast path stays an explicit "
        "opt-in (guards ROADMAP item 1)."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for event in _module_events(ctx):
            if event.kind != "narrow":
                continue
            yield self.finding(
                ctx,
                event.node,
                "float64 value narrowed to float32; route precision "
                "choices through an explicit dtype= parameter at the "
                "call boundary",
            )


@register_rule
class MixedAccumulationRule(_DtypeRule):
    """DTY002 — float32 and float64 must not meet in an accumulation.

    Mixed-width accumulation upcasts per element, so the rounding of the
    running sum depends on which operand carried which width — exactly
    the accumulation-order drift Langrené & Warin warn about, and a
    silent way to break the bit-identical fold contract.
    """

    rule_id = "DTY002"
    summary = "accumulation mixing float32 and float64 operands"
    rationale = (
        "Mixed-width sums make the rounding pattern depend on operand "
        "dtype placement; the strict row-order fold is only bit-stable "
        "when every term enters at one agreed width (guards the "
        "distributed fold, ROADMAP item 2)."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for event in _module_events(ctx):
            if event.kind != "mixed":
                continue
            yield self.finding(
                ctx,
                event.node,
                "float32 and float64 meet in an accumulation; cast once "
                "at the boundary so every term enters at the same width",
            )


@register_rule
class RedundantCastRule(_DtypeRule):
    """DTY003 — no re-casting a value to the dtype it provably has.

    ``ensure_bandwidths(...).astype(float)`` allocates and copies a
    full array to change nothing: the validator already returns
    contiguous float64 (the dataflow engine proves it through the
    cross-module summary chain ``ensure_bandwidths → as_float_array →
    np.asarray(dtype=float64)``).  Inside a loop the dead copy is also a
    per-iteration allocation.
    """

    rule_id = "DTY003"
    summary = "astype() to the dtype the value already has (dead copy)"
    rationale = (
        "A same-dtype astype() is an allocation + copy that changes no "
        "bits; it hides the real dtype provenance and, in sweep loops, "
        "costs a buffer per iteration — use the validated value "
        "directly (e.g. core.grid.ensure_bandwidth_grid for grids)."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for event in _module_events(ctx):
            if event.kind != "redundant":
                continue
            target = event.target.value
            in_loop = (
                isinstance(event.node, ast.expr)
                and ctx.enclosing_loop(event.node) is not None
            )
            suffix = (
                " (inside a loop: one dead copy per iteration)"
                if in_loop
                else ""
            )
            yield self.finding(
                ctx,
                event.node,
                f"value is already {target}; the astype() is a dead "
                f"copy{suffix} — drop it or hoist the dtype choice to "
                "the validation boundary",
            )
