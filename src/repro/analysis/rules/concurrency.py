"""Concurrency-lifecycle rules: CON001 (shared-memory segments), CON002
(worker-pool lifecycles), CON003 (fork safety and lock discipline).

The zero-copy substrate (``parallel/shm.py``) and the fork pool
(``parallel/pool.py``) have strict ownership stories: the parent creates
and unlinks every segment, pools are closed or terminated on every exit
path.  These rules encode the ownership story as checkable shape:

* a resource-owning constructor call must either be a ``with`` context,
  hand ownership off (returned, stored into a container/attribute,
  passed to another owner), or have its cleanup reachable from a
  ``try``'s handler or ``finally`` — i.e. on the *error* path, not just
  the happy path;
* threads must not predate a fork (the child inherits the lock states of
  a threaded parent — the classic fork-after-spawn deadlock);
* blocking ``join()`` calls must not run while a lock is held.

Heuristics are deliberately shape-based (no interprocedural escape
analysis): a resource that escapes the function is *someone else's*
lifecycle and is never flagged.  False negatives are acceptable; false
positives on the repo's own correct patterns are not — the shapes above
were derived from ``shm.py``/``pool.py``/``backends.py``/``engine.py``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, register_rule

__all__ = ["ForkSafetyRule", "PoolLifecycleRule", "ShmLifecycleRule"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _matches_suffix(canonical: str | None, names: tuple[str, ...]) -> bool:
    """Whether a canonical dotted name ends with one of ``names`` on a
    dotted boundary (``repro.parallel.shm.ShmWorkspace.create`` matches
    ``ShmWorkspace.create``)."""
    if canonical is None:
        return False
    return any(
        canonical == name or canonical.endswith("." + name) for name in names
    )


def _extract_call(
    ctx: ModuleContext, value: ast.expr, names: tuple[str, ...]
) -> ast.Call | None:
    """The constructor call matching ``names`` inside an assignment RHS.

    Sees through the repo's conditional-ownership idioms:
    ``pool or WorkerPool(w)`` and ``WorkerPool(w) if cond else None``.
    """
    candidates: list[ast.expr] = [value]
    if isinstance(value, ast.BoolOp):
        candidates = list(value.values)
    elif isinstance(value, ast.IfExp):
        candidates = [value.body, value.orelse]
    for expr in candidates:
        if isinstance(expr, ast.Call) and _matches_suffix(
            ctx.canonical_name(expr.func), names
        ):
            return expr
    return None


def _enclosing_scope(ctx: ModuleContext, node: ast.AST) -> ast.AST:
    for anc in ctx.ancestors(node):
        if isinstance(anc, _FUNC_NODES):
            return anc
    return ctx.tree


def _name_in(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node)
    )


def _escapes(scope: ast.AST, name: str) -> bool:
    """Whether ``name`` leaves the scope's ownership.

    Escape routes (each hands the resource to another owner): returned
    or yielded; stored into a container slot or an attribute; passed as
    an argument to another call.  A method call *on* the name
    (``name.close()``) is not an escape.
    """
    for node in ast.walk(scope):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None and _name_in(node.value, name):
                return True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    if _name_in(node.value, name):
                        return True
        elif isinstance(node, ast.Call):
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
            for kw in node.keywords:
                if isinstance(kw.value, ast.Name) and kw.value.id == name:
                    return True
    return False


def _cleanup_on_error_path(
    scope: ast.AST, name: str, cleanup_methods: tuple[str, ...]
) -> bool:
    """Whether ``name.<cleanup>()`` is reachable when an exception unwinds.

    Accepted shapes: the cleanup call sits in a ``finally`` or an
    ``except`` handler of some Try in the scope, or the name itself is a
    ``with`` context (``with pool:``).  Cleanup only on the straight-line
    path does NOT count — that is exactly the leak-on-error bug.
    """
    for node in ast.walk(scope):
        if isinstance(node, ast.Try):
            protected: list[ast.stmt] = list(node.finalbody)
            for handler in node.handlers:
                protected.extend(handler.body)
            for stmt in protected:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in cleanup_methods
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == name
                    ):
                        return True
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (
                    isinstance(item.context_expr, ast.Name)
                    and item.context_expr.id == name
                ):
                    return True
    return False


class _LifecycleRule(Rule):
    """Shared machinery for the create-without-cleanup rules."""

    create_names_attr = ""
    cleanup_methods: tuple[str, ...] = ()

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_modules(ctx.config.concurrency_modules)

    def _creation_sites(
        self, ctx: ModuleContext, names: tuple[str, ...]
    ) -> Iterator[tuple[ast.Assign, str, ast.Call]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            call = _extract_call(ctx, node.value, names)
            if call is None:
                continue
            if len(node.targets) != 1 or not isinstance(
                node.targets[0], ast.Name
            ):
                # Attribute/container targets transfer ownership to the
                # holder; tuple targets don't occur for constructors.
                continue
            yield node, node.targets[0].id, call

    def _leaks(self, ctx: ModuleContext, site: ast.Assign, name: str) -> bool:
        scope = _enclosing_scope(ctx, site)
        if _escapes(scope, name):
            return False
        if _cleanup_on_error_path(scope, name, self.cleanup_methods):
            return False
        return True


@register_rule
class ShmLifecycleRule(_LifecycleRule):
    """CON001 — shared-memory creation must close+unlink on every path.

    A segment that is neither with-managed, handed off, nor cleaned up
    under a ``try`` outlives its process in ``/dev/shm`` the first time
    an exception unwinds — the exact litter the chaos suite sweeps for.
    """

    rule_id = "CON001"
    summary = "shared-memory segment created without error-path cleanup"
    rationale = (
        "POSIX shared memory outlives the process: a segment created "
        "outside with/try-finally leaks into /dev/shm whenever an "
        "exception unwinds, and leaked names eventually collide or "
        "exhaust the tmpfs.  Ownership is parental and explicit — "
        "create under a context manager or close()+unlink() in a "
        "finally/except."
    )
    cleanup_methods = ("close", "unlink")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for site, name, call in self._creation_sites(
            ctx, ctx.config.shm_create_call_names
        ):
            canonical = ctx.canonical_name(call.func) or ""
            if canonical.rsplit(".", 1)[-1] == "SharedMemory":
                # Bare SharedMemory(...) owns the name only when it
                # *creates* it; attaching (create absent/False) needs no
                # unlink and is the worker-side pattern.
                if not any(
                    kw.arg == "create"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in call.keywords
                ):
                    continue
            if self._leaks(ctx, site, name):
                yield self.finding(
                    ctx,
                    site,
                    f"segment {name!r} has no close()+unlink() on the "
                    "error path; use a with block or try/finally "
                    "(parent-owns-and-unlinks contract)",
                )


@register_rule
class PoolLifecycleRule(_LifecycleRule):
    """CON002 — worker pools need with/try-finally lifecycles.

    A pool abandoned by an unwinding exception keeps its forked workers
    (and their shm attachments) alive until interpreter exit; under
    pytest or the serving daemon that is a fork bomb in slow motion.
    """

    rule_id = "CON002"
    summary = "worker pool constructed without with/try-finally lifecycle"
    rationale = (
        "Forked workers survive their parent's exception: a pool that "
        "is not with-managed or closed/terminated in a finally/except "
        "strands processes (and any shared-memory attachments they "
        "hold) until interpreter exit."
    )
    cleanup_methods = ("close", "terminate", "join")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for site, name, _call in self._creation_sites(
            ctx, ctx.config.pool_class_names
        ):
            if self._leaks(ctx, site, name):
                yield self.finding(
                    ctx,
                    site,
                    f"pool {name!r} is not closed/terminated on the error "
                    "path; use `with WorkerPool(...)` or try/finally",
                )


@register_rule
class ForkSafetyRule(Rule):
    """CON003 — no threads before fork; no blocking joins under a lock.

    Both are deadlock shapes, not style: ``fork`` snapshots a threaded
    parent mid-flight (a lock held by a non-forked thread stays locked
    forever in the child), and a ``join()`` while holding a lock blocks
    every other party that needs it for as long as the joinee runs.
    """

    rule_id = "CON003"
    summary = "thread created before a fork, or blocking join under a lock"
    rationale = (
        "fork() clones only the calling thread but *all* lock states: a "
        "lock held by any other thread at fork time is locked forever "
        "in the child.  Joining while holding a lock inverts it — "
        "everyone needing the lock now waits on the joinee.  Start "
        "threads after the pool forks; release locks before joining."
    )

    #: Fork points: the repo's pool class plus the stdlib constructor.
    _fork_names = ("multiprocessing.Pool",)

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_modules(ctx.config.concurrency_modules)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        yield from self._thread_before_fork(ctx)
        yield from self._join_under_lock(ctx)

    # -- part A: thread creation preceding a fork in the same function ----

    def _thread_before_fork(self, ctx: ModuleContext) -> Iterable[Finding]:
        fork_names = self._fork_names + ctx.config.pool_class_names
        for node in ast.walk(ctx.tree):
            if not isinstance(node, _FUNC_NODES):
                continue
            threads: list[ast.Call] = []
            forks: list[ast.Call] = []
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                canonical = ctx.canonical_name(sub.func)
                if canonical == "threading.Thread":
                    threads.append(sub)
                elif _matches_suffix(canonical, fork_names):
                    forks.append(sub)
            for fork in forks:
                earlier = [t for t in threads if t.lineno < fork.lineno]
                if earlier:
                    yield self.finding(
                        ctx,
                        fork,
                        f"fork at line {fork.lineno} follows a thread "
                        f"started at line {earlier[0].lineno}; the child "
                        "inherits that thread's lock states frozen — "
                        "fork first, thread after",
                    )

    # -- part B: blocking join() while a lock is held ----------------------

    def _join_under_lock(self, ctx: ModuleContext) -> Iterable[Finding]:
        hints = tuple(h.lower() for h in ctx.config.lock_name_hints)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not self._holds_lock(ctx, node, hints):
                continue
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "join"
                        and self._is_blocking_join(sub)
                    ):
                        yield self.finding(
                            ctx,
                            sub,
                            "blocking join() while holding a lock; every "
                            "other thread needing the lock now waits on "
                            "the joinee — release first, then join",
                        )

    @staticmethod
    def _holds_lock(
        ctx: ModuleContext, node: ast.With | ast.AsyncWith, hints: tuple[str, ...]
    ) -> bool:
        for item in node.items:
            dotted = ctx.dotted_name(item.context_expr)
            if dotted is not None and any(
                hint in dotted.lower() for hint in hints
            ):
                return True
        return False

    @staticmethod
    def _is_blocking_join(call: ast.Call) -> bool:
        """Thread/process joins block with no args or a numeric timeout;
        ``str.join`` always takes an iterable, so it never matches."""
        if call.keywords and all(kw.arg == "timeout" for kw in call.keywords):
            return not call.args
        if call.keywords:
            return False
        if not call.args:
            return True
        return len(call.args) == 1 and (
            isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, (int, float))
        )
