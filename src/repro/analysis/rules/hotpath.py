"""Hot-path hygiene: NUM003 (no allocation inside sweep loops)."""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, register_rule

__all__ = ["LoopAllocationRule"]


@register_rule
class LoopAllocationRule(Rule):
    """NUM003 — no array allocation inside loops of hot-path modules.

    The O(n²) sweep modules iterate over row chunks, grid bandwidths and
    polynomial terms; an allocator inside those loops turns a
    memory-bandwidth-bound pass into an allocator-bound one.  Hoist the
    buffer and fill it in place (``out[...] = ...``), or slice a
    preallocated base array.
    """

    rule_id = "NUM003"
    summary = "array allocation inside a loop of a hot-path module"
    rationale = (
        "Per-iteration allocation in the O(n²) sweeps (fastgrid, loocv, "
        "lscv, simulated device) dominates runtime at paper-scale n; "
        "buffers must be hoisted out of the loop."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_modules(ctx.config.hot_path_modules)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        allocators = frozenset(ctx.config.loop_allocation_calls)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.call_name(node)
            if name not in allocators:
                continue
            loop = ctx.enclosing_loop(node)
            if loop is None:
                continue
            yield self.finding(
                ctx,
                node,
                f"{name.rpartition('.')[2]}() allocates inside the loop at "
                f"line {loop.lineno}; hoist the buffer out of the hot path",
            )
