"""Numerical-correctness rules: NUM001 (float equality), NUM004 (dtype)."""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, register_rule

__all__ = ["FloatEqualityRule", "ExplicitDtypeRule"]

#: Canonical names of module-level float constants.
_FLOAT_CONSTANTS = frozenset(
    {
        "numpy.nan",
        "numpy.inf",
        "numpy.pi",
        "numpy.e",
        "numpy.euler_gamma",
        "math.nan",
        "math.inf",
        "math.pi",
        "math.e",
        "math.tau",
    }
)

#: How many positional args cover the dtype slot of each allocator.
_DTYPE_POSITION = {
    "numpy.empty": 2,
    "numpy.zeros": 2,
    "numpy.ones": 2,
    "numpy.full": 3,
}


def _is_float_like(ctx: ModuleContext, node: ast.AST) -> bool:
    """Statically certainly-float expressions (constants and float())."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_like(ctx, node.operand)
    if isinstance(node, ast.BinOp):
        return _is_float_like(ctx, node.left) or _is_float_like(ctx, node.right)
    if isinstance(node, ast.Call):
        return ctx.canonical_name(node.func) == "float"
    name = ctx.canonical_name(node)
    return name in _FLOAT_CONSTANTS


@register_rule
class FloatEqualityRule(Rule):
    """NUM001 — no exact ``==``/``!=`` against float expressions.

    The CV curve around its argmin is flat to ~1e-12; exact equality on
    scores or bandwidths makes tie-breaking depend on summation order
    (and therefore on chunking, backend, and thread count).
    """

    rule_id = "NUM001"
    summary = "exact ==/!= comparison against a float expression"
    rationale = (
        "Float equality around the CV argmin makes the selected bandwidth "
        "depend on summation order (chunking/backend/thread count); use "
        "repro.utils.numeric.isclose/is_zero or an ordered comparison."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_float_like(ctx, left) or _is_float_like(ctx, right):
                    yield self.finding(
                        ctx,
                        node,
                        "exact float equality; use repro.utils.numeric."
                        "isclose/is_zero (or an ordered comparison) so ties "
                        "do not depend on summation order",
                    )
                    break  # one finding per comparison chain


@register_rule
class ExplicitDtypeRule(Rule):
    """NUM004 — array allocators must pass an explicit ``dtype``.

    The paper's precision ablation (float32 GPU vs float64 CPU) only
    means something if every buffer's dtype is chosen, not inherited
    from numpy defaults that differ across platforms and inputs.
    """

    rule_id = "NUM004"
    summary = "np.empty/np.zeros/np.ones/np.full without an explicit dtype"
    rationale = (
        "Implicit dtypes silently mix float32/float64 across backends and "
        "invalidate the paper's single- vs double-precision comparison; "
        "every allocation names its dtype."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        allocators = frozenset(ctx.config.explicit_dtype_calls)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.call_name(node)
            if name not in allocators:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            if len(node.args) >= _DTYPE_POSITION.get(name, 2):
                continue  # dtype passed positionally
            yield self.finding(
                ctx,
                node,
                f"{name.rpartition('.')[2]}() without an explicit dtype; "
                "pass dtype=... so float32/float64 choices are deliberate",
            )
