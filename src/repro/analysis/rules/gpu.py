"""Device determinism: GPU001 (no wall clocks or unseeded RNG on device)."""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, register_rule

__all__ = ["DeviceDeterminismRule"]

_NUMPY_RANDOM_PREFIX = "numpy.random."


@register_rule
class DeviceDeterminismRule(Rule):
    """GPU001 — simulated-device modules stay bit-deterministic.

    The gpusim/cuda_port result tables are compared against CPU ground
    truth; a wall-clock read or an unseeded RNG inside the device path
    makes launches irreproducible and the float32 comparison meaningless.
    Host-side *measurement* of wall time is allowed via an explicit
    ``# repro-lint: disable=GPU001`` at the call site.
    """

    rule_id = "GPU001"
    summary = "wall clock / unseeded randomness in a simulated-device module"
    rationale = (
        "Device kernels are validated bit-for-bit against the CPU path; "
        "time.* and unseeded RNG make launches irreproducible.  Wall-time "
        "measurement belongs to the host harness and is suppressed there "
        "explicitly."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_modules(ctx.config.gpu_modules)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.call_name(node)
            if name is None:
                continue
            message = self._violation(ctx, name, node)
            if message is not None:
                yield self.finding(ctx, node, message)

    @staticmethod
    def _violation(ctx: ModuleContext, name: str, node: ast.Call) -> str | None:
        for prefix in ctx.config.banned_call_prefixes:
            if name.startswith(prefix):
                return (
                    f"{name}() in a device module breaks launch determinism; "
                    "keep wall clocks and stdlib randomness on the host"
                )
        if name.startswith(_NUMPY_RANDOM_PREFIX):
            member = name[len(_NUMPY_RANDOM_PREFIX) :]
            if member == "default_rng":
                if not node.args and not node.keywords:
                    return (
                        "default_rng() without a seed in a device module; "
                        "pass an explicit seed so launches replay"
                    )
                return None
            if member not in ctx.config.allowed_numpy_random:
                return (
                    f"numpy.random.{member}() uses the legacy global RNG "
                    "state; construct a seeded Generator instead"
                )
        return None
