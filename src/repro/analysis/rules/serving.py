"""Serving hygiene: SRV001 (no blocking calls on the event loop).

The serving layer multiplexes every request over one asyncio event
loop.  A single blocking call inside an ``async def`` — ``time.sleep``,
a synchronous pool join, a blocking HTTP fetch — stalls *all* in-flight
requests for its duration: queue-wait percentiles blow up and the
micro-batching deadline logic (which measures wall time on the loop)
over-batches.  Blocking work belongs on executor threads via
``loop.run_in_executor`` — the pattern every serving runner uses.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, register_rule

__all__ = ["AsyncBlockingCallRule"]

#: Method names that block when invoked synchronously on a pool/thread.
_JOIN_LIKE = frozenset({"join", "shutdown"})


@register_rule
class AsyncBlockingCallRule(Rule):
    """SRV001 — blocking call inside an ``async def`` in the serving layer.

    Flags, lexically inside ``async def`` bodies of serving modules:

    * calls whose canonical dotted name is configured as blocking
      (``time.sleep``, ``subprocess.run``, ``urllib.request.urlopen``,
      ...);
    * synchronous pool/executor joins — ``<pool-ish>.join()`` /
      ``.shutdown()`` and the pool submission methods from the PAR001
      config (``pool.map`` et al.) when the receiver name hints at a
      pool.

    Nested ``def`` bodies are exempt: a sync helper defined inside an
    async function typically runs on an executor thread, which is the
    sanctioned home for blocking work.
    """

    rule_id = "SRV001"
    summary = "blocking call inside async def on the serving event loop"
    rationale = (
        "The serving layer runs every request on one event loop; a "
        "blocking call inside an async def stalls all concurrent "
        "requests and skews the micro-batcher's deadline accounting. "
        "Route blocking work through loop.run_in_executor instead."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_modules(ctx.config.serving_modules)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for call in self._calls_in_async_body(func):
                message = self._blocking_reason(ctx, call)
                if message is not None:
                    yield self.finding(
                        ctx,
                        call,
                        f"{message} inside 'async def {func.name}' blocks "
                        "the serving event loop; use "
                        "loop.run_in_executor for blocking work",
                    )

    @staticmethod
    def _calls_in_async_body(func: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
        """Calls lexically in ``func``, not inside nested function defs."""
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def _blocking_reason(self, ctx: ModuleContext, call: ast.Call) -> str | None:
        name = ctx.call_name(call)
        if name is not None and name in ctx.config.serving_blocking_calls:
            return f"blocking call '{name}()'"
        if not isinstance(call.func, ast.Attribute):
            return None
        method = call.func.attr
        blocking_method = method in _JOIN_LIKE or (
            method in ctx.config.pool_method_names
        )
        if not blocking_method:
            return None
        receiver = ctx.dotted_name(call.func.value) or ""
        lowered = receiver.lower()
        if any(hint in lowered for hint in ctx.config.pool_receiver_hints):
            return f"synchronous pool call '{receiver}.{method}()'"
        return None
