"""Observability hygiene: OBS001 (no tracing calls in hot per-row loops)."""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule, register_rule

__all__ = ["LoopTracingRule"]


@register_rule
class LoopTracingRule(Rule):
    """OBS001 — no tracing calls inside loops of hot-path modules.

    Every span open/close allocates a handle, reads the monotonic clock
    twice and appends to the ring buffer.  At function scope that is
    nanoseconds against an O(n²) sweep; inside the per-chunk or
    per-observation loop it multiplies by the iteration count and — worse
    — shows up even when tracing is *enabled*, skewing exactly the
    measurement the span exists to make.  Open the span around the loop,
    or accumulate locally and emit one counter after it.
    """

    rule_id = "OBS001"
    summary = "tracing call inside a loop of a hot-path module"
    rationale = (
        "Span and counter calls in the O(n²) sweep loops add per-iteration "
        "clock reads and ring-buffer appends, distorting the very phases "
        "being measured; trace around the loop, not inside it."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_modules(ctx.config.hot_path_modules)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        tracing = frozenset(ctx.config.tracing_call_names)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.call_name(node)
            if name is None or name.rpartition(".")[2] not in tracing:
                continue
            loop = ctx.enclosing_loop(node)
            if loop is None:
                continue
            yield self.finding(
                ctx,
                node,
                f"{name.rpartition('.')[2]}() records tracing data inside "
                f"the loop at line {loop.lineno}; hoist the span/counter "
                "out of the hot path",
            )
