"""Git-aware file filtering for ``repro-lint --changed``.

``--changed`` narrows the *report* to files touched in the working tree
(staged, unstaged, and untracked), which is what a pre-commit hook
wants.  The whole-program index is still built over every path given —
cross-module dtype summaries must see the unchanged modules, otherwise
a changed caller of an unchanged validator would lose exactly the
cross-module knowledge this engine exists for.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

__all__ = ["GitError", "changed_files"]


class GitError(RuntimeError):
    """git could not be consulted (not a repo, no binary, …)."""


def _git_lines(args: list[str], cwd: Path) -> list[str]:
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise GitError(f"cannot run git {' '.join(args)}: {exc}") from exc
    if proc.returncode != 0:
        raise GitError(
            f"git {' '.join(args)} failed: {proc.stderr.strip() or proc.returncode}"
        )
    return [line for line in proc.stdout.splitlines() if line.strip()]


def changed_files(cwd: str | Path = ".") -> set[Path]:
    """Absolute paths of files modified relative to HEAD plus untracked.

    Covers the pre-commit surface: staged edits, unstaged edits, and
    new files not yet known to git.
    """
    base = Path(cwd).resolve()
    root = Path(_git_lines(["rev-parse", "--show-toplevel"], base)[0])
    names = set(_git_lines(["diff", "--name-only", "HEAD", "--"], base))
    names |= set(
        _git_lines(["ls-files", "--others", "--exclude-standard"], base)
    )
    return {(root / name).resolve() for name in names}
