"""Reporters: compiler-style text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.analysis.findings import Finding
from repro.analysis.rules import RULE_REGISTRY

__all__ = ["render_text", "render_json"]


def render_text(findings: Sequence[Finding], *, summary: bool = True) -> str:
    """``path:line:col: RULE message`` per finding, plus a tally line."""
    lines = [f.format() for f in findings]
    if summary:
        if findings:
            counts = Counter(f.rule_id for f in findings)
            tally = ", ".join(f"{rid}: {n}" for rid, n in sorted(counts.items()))
            lines.append(f"{len(findings)} finding(s) ({tally})")
        else:
            lines.append("0 findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """JSON document with findings, per-rule counts, and rule metadata."""
    counts = Counter(f.rule_id for f in findings)
    rules = {
        rule_id: {
            "summary": cls.summary,
            "rationale": cls.rationale,
        }
        for rule_id, cls in sorted(RULE_REGISTRY.items())
    }
    doc = {
        "findings": [f.to_dict() for f in findings],
        "counts": dict(sorted(counts.items())),
        "total": len(findings),
        "rules": rules,
    }
    return json.dumps(doc, indent=2, sort_keys=False)
