"""Finding baseline: the ratchet that lets the linter gate CI.

A baseline records the findings a tree is *known* to have, so the gate
can fail on **new** findings only: existing debt is frozen, the count
can go down but never silently up.  ``repro-lint --update-baseline``
writes it; ``repro-lint --baseline FILE`` subtracts it.

Matching is by ``(path, rule, message)`` — deliberately **not** by line
number, so unrelated edits that shift a baselined finding up or down the
file do not resurface it.  Matching consumes baseline entries multiset-
style: two identical new findings against one baselined entry report one
new finding.

The file is JSON, sorted and newline-terminated, so diffs of the ratchet
itself review cleanly.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding

__all__ = ["Baseline", "BaselineError", "partition"]

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """A baseline file that cannot be read or has the wrong shape."""


def _key(path: str, rule: str, message: str) -> tuple[str, str, str]:
    return (_normalise(path), rule, message)


def _normalise(path: str) -> str:
    """Repo-portable form: posix separators, relative to cwd when under it."""
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass
    return p.as_posix()


@dataclass
class Baseline:
    """A multiset of accepted findings."""

    entries: Counter = field(default_factory=Counter)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Counter = Counter(
            _key(f.path, f.rule_id, f.message) for f in findings
        )
        return cls(entries=counts)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise BaselineError(
                f"baseline {path} is not valid JSON: {exc}"
            ) from exc
        if (
            not isinstance(payload, dict)
            or payload.get("version") != _FORMAT_VERSION
            or not isinstance(payload.get("findings"), list)
        ):
            raise BaselineError(
                f"baseline {path} has an unrecognised shape (expected "
                f'{{"version": {_FORMAT_VERSION}, "findings": [...]}}'
            )
        counts: Counter = Counter()
        for item in payload["findings"]:
            try:
                counts[_key(item["path"], item["rule"], item["message"])] += int(
                    item.get("count", 1)
                )
            except (TypeError, KeyError) as exc:
                raise BaselineError(
                    f"baseline {path}: malformed entry {item!r}"
                ) from exc
        return cls(entries=counts)

    def save(self, path: str | Path) -> None:
        findings = [
            {"path": p, "rule": rule, "message": message, "count": count}
            for (p, rule, message), count in sorted(self.entries.items())
        ]
        payload = {"version": _FORMAT_VERSION, "findings": findings}
        Path(path).write_text(
            json.dumps(payload, indent=2, ensure_ascii=False) + "\n",
            encoding="utf-8",
        )

    @property
    def total(self) -> int:
        return sum(self.entries.values())


def partition(
    findings: Sequence[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into ``(new, baselined)`` against the ratchet.

    Consumes baseline entries as they match, so growth *within* one
    (path, rule, message) bucket still surfaces as new.
    """
    remaining = Counter(baseline.entries)
    new: list[Finding] = []
    accepted: list[Finding] = []
    for finding in findings:
        key = _key(finding.path, finding.rule_id, finding.message)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            accepted.append(finding)
        else:
            new.append(finding)
    return new, accepted
