"""The lint engine: parse, annotate, dispatch rules, filter suppressions.

One :class:`ModuleContext` is built per file.  It carries everything the
rules need so each rule can stay a pure function of the context:

* the parsed tree with parent back-links (``parent_of``/``ancestors``),
* an import-alias map so calls can be matched by *canonical* dotted name
  (``np.zeros`` and ``from numpy import zeros as z; z(...)`` both
  resolve to ``numpy.zeros``),
* the package-relative path used by module-scoped rules,
* the set of function names defined *nested* inside other functions
  (closures — the PAR001 picklability hazard),
* the module's declared ``__all__``, when it is a literal.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Sequence

from repro.analysis.config import DEFAULT_CONFIG, LintConfig
from repro.analysis.findings import SYNTAX_RULE_ID, Finding
from repro.analysis.project import ModuleInfo, ProjectIndex
from repro.analysis.suppressions import SuppressionIndex

__all__ = ["LintEngine", "ModuleContext", "iter_python_files"]

_PARENT = "_repro_lint_parent"

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _annotate_parents(tree: ast.Module) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, _PARENT, node)


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to canonical dotted origins from import statements."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".", 1)[0]
                target = item.name if item.asname else item.name.split(".", 1)[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            prefix = ("." * node.level) + (node.module or "")
            for item in node.names:
                if item.name == "*":
                    continue
                local = item.asname or item.name
                aliases[local] = f"{prefix}.{item.name}" if prefix else item.name
    return aliases


def _collect_nested_functions(tree: ast.Module) -> frozenset[str]:
    nested: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, _FUNC_NODES):
            for anc in _iter_ancestors(node):
                if isinstance(anc, _FUNC_NODES):
                    nested.add(node.name)
                    break
    return frozenset(nested)


def _collect_exported(tree: ast.Module) -> frozenset[str] | None:
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            names = [
                el.value
                for el in node.value.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            ]
            return frozenset(names)
    return None


def _iter_ancestors(node: ast.AST) -> Iterator[ast.AST]:
    current = getattr(node, _PARENT, None)
    while current is not None:
        yield current
        current = getattr(current, _PARENT, None)


def derive_rel_path(path: str | Path) -> str:
    """Package-relative posix path for module-scoped pattern matching.

    ``.../src/repro/core/fastgrid.py`` → ``core/fastgrid.py``; for paths
    outside the package the bare filename is used.
    """
    parts = PurePosixPath(Path(path).as_posix()).parts
    for anchor in ("repro", "src"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            tail = parts[idx + 1 :]
            if tail:
                return "/".join(tail)
    return parts[-1] if parts else str(path)


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: str
    rel: str
    source: str
    tree: ast.Module
    config: LintConfig
    aliases: dict[str, str] = field(default_factory=dict)
    nested_functions: frozenset[str] = frozenset()
    exported: frozenset[str] | None = None
    #: Whole-program view (symbol table, call graph, dtype summaries).
    #: Always present after a successful parse — single-snippet lints get
    #: a one-module index so local function summaries still resolve.
    project: ProjectIndex | None = None
    #: This module's entry in :attr:`project` (None only for pathological
    #: cases where the project parse disagreed with the engine parse).
    module_info: ModuleInfo | None = None

    # -- classification ----------------------------------------------------

    def in_modules(self, patterns: tuple[str, ...]) -> bool:
        """Whether this module matches one of the config glob patterns."""
        return self.config.matches(self.rel, patterns)

    # -- name resolution ---------------------------------------------------

    def dotted_name(self, node: ast.AST) -> str | None:
        """Raw dotted name of a Name/Attribute chain (``np.random.rand``)."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
            return ".".join(reversed(parts))
        return None

    def canonical_name(self, node: ast.AST) -> str | None:
        """Alias-resolved dotted name, or None for non-name expressions."""
        raw = self.dotted_name(node)
        if raw is None:
            return None
        head, _, rest = raw.partition(".")
        resolved = self.aliases.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved

    def call_name(self, call: ast.Call) -> str | None:
        """Canonical name of the called object, when it has one."""
        return self.canonical_name(call.func)

    # -- tree navigation ---------------------------------------------------

    def parent_of(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent (None for the module node)."""
        return getattr(node, _PARENT, None)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk parents from ``node`` up to the module."""
        return _iter_ancestors(node)

    def enclosing_loop(self, node: ast.AST) -> ast.AST | None:
        """The nearest For/While ancestor within the same function body.

        The walk stops at function boundaries that are themselves outside
        a loop, so a helper *defined* at function scope is not "in a
        loop", while code inside a loop of that helper is.
        """
        for anc in _iter_ancestors(node):
            if isinstance(anc, _LOOP_NODES):
                return anc
            if isinstance(anc, _FUNC_NODES):
                return None
        return None

    def is_module_level_function(self, node: ast.AST) -> bool:
        """Whether ``node`` is a def whose parent is the module itself."""
        return isinstance(node, _FUNC_NODES) and isinstance(
            self.parent_of(node), ast.Module
        )

    def is_public(self, name: str) -> bool:
        """Public = exported via ``__all__`` (or no underscore prefix)."""
        if self.exported is not None:
            return name in self.exported
        return not name.startswith("_")


class LintEngine:
    """Parses modules and runs the registered rules over them."""

    def __init__(
        self,
        config: LintConfig | None = None,
        rules: Sequence["Rule"] | None = None,  # noqa: F821 - fwd ref
        *,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ):
        from repro.analysis.rules import default_rules

        self.config = config or DEFAULT_CONFIG
        active = list(rules) if rules is not None else default_rules()
        selected = set(select) if select is not None else None
        ignored = set(ignore or ()) | set(self.config.disabled_rules)
        self.rules = [
            rule
            for rule in active
            if (selected is None or rule.rule_id in selected)
            and rule.rule_id not in ignored
        ]

    # -- single module -----------------------------------------------------

    def lint_source(
        self,
        source: str,
        path: str = "<string>",
        rel: str | None = None,
        project: ProjectIndex | None = None,
    ) -> list[Finding]:
        """Lint one module given as a string; ``rel`` overrides the
        package-relative path used for module-scoped rules.

        ``project`` carries the whole-program index when linting a tree
        (:meth:`lint_paths` builds it once); a single-snippet lint gets a
        one-module index so cross-function dtype summaries still work
        within the snippet.
        """
        resolved_rel = rel if rel is not None else derive_rel_path(path)
        info: ModuleInfo | None = None
        if project is not None:
            info = project.modules.get(project.by_path.get(str(path), ""))
        if info is not None:
            # Reuse the project's parse: same source, already annotated.
            tree = info.tree
        else:
            try:
                tree = ast.parse(source)
            except SyntaxError as exc:
                return [
                    Finding(
                        path=path,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        rule_id=SYNTAX_RULE_ID,
                        message=f"cannot parse file: {exc.msg}",
                    )
                ]
            _annotate_parents(tree)
        if project is None:
            project = ProjectIndex.build([(path, resolved_rel, source)])
            info = project.modules.get(project.by_path.get(str(path), ""))
        ctx = ModuleContext(
            path=path,
            rel=resolved_rel,
            source=source,
            tree=tree,
            config=self.config,
            aliases=_collect_aliases(tree),
            nested_functions=_collect_nested_functions(tree),
            exported=_collect_exported(tree),
            project=project,
            module_info=info,
        )
        findings: list[Finding] = []
        for rule in self.rules:
            if rule.applies_to(ctx):
                findings.extend(rule.check(ctx))
        suppressions = SuppressionIndex.from_source(source)
        return sorted(f for f in findings if not suppressions.is_suppressed(f))

    def lint_file(
        self,
        path: str | Path,
        rel: str | None = None,
        project: ProjectIndex | None = None,
    ) -> list[Finding]:
        """Lint one file on disk."""
        text = Path(path).read_text(encoding="utf-8")
        return self.lint_source(text, path=str(path), rel=rel, project=project)

    # -- trees -------------------------------------------------------------

    def lint_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        """Lint files and/or directory trees; directories are walked for
        ``*.py`` files (sorted, deterministic order).

        The whole file set is indexed into one :class:`ProjectIndex`
        first, so cross-module rules (dtype flow through the validation
        funnel, call-graph-aware checks) see every module regardless of
        which file they fire in.
        """
        files: list[tuple[Path, str]] = []
        for path in paths:
            for file_path in iter_python_files(path):
                try:
                    files.append(
                        (file_path, file_path.read_text(encoding="utf-8"))
                    )
                except OSError:
                    continue
        project = ProjectIndex.build(
            (str(fp), derive_rel_path(fp), source) for fp, source in files
        )
        findings: list[Finding] = []
        for file_path, source in files:
            findings.extend(
                self.lint_source(
                    source, path=str(file_path), project=project
                )
            )
        return sorted(findings)


def iter_python_files(path: str | Path) -> Iterator[Path]:
    """Yield ``path`` itself (if a .py file) or every .py file under it."""
    p = Path(path)
    if p.is_dir():
        yield from sorted(
            f for f in p.rglob("*.py") if "__pycache__" not in f.parts
        )
    elif p.suffix == ".py" or p.is_file():
        yield p
