"""Whole-program view: symbol table and call graph over a source tree.

PR 1's engine analyses one module at a time, which is enough for the
syntactic rule families (NUM/PAR/GPU/ROB/SRV/OBS) but not for the
contracts the compiled-hot-path and distributed-selection work depend
on: *dtype flow across call boundaries* ("does ``ensure_bandwidths``
hand me float64?") needs to know what a function defined in another
module returns.  This module builds that view:

* a **symbol table** mapping qualified names —
  ``repro.utils.validation.ensure_bandwidths``,
  ``repro.parallel.shm.SharedArray.create`` — to their def nodes;
* a best-effort **call graph** (caller qname → callee qnames), resolved
  through each module's import-alias map.  Dynamic dispatch, method
  calls on inferred receivers, and higher-order uses are out of scope;
  edges exist only where the callee is a resolvable dotted name.  Cycles
  are expected (mutual recursion) and tolerated by every consumer.

The index deliberately re-uses the per-module machinery from
:mod:`repro.analysis.engine` (alias collection, parent annotation) so a
module is parsed exactly once per lint run: :class:`ProjectIndex`
caches the annotated trees and ``LintEngine.lint_paths`` hands them
back to ``lint_source``.

Unparsable files are *recorded*, not raised: the engine still emits its
``E901`` finding for them, and the index simply has no symbols from the
broken module.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.dtypeflow import FunctionSummary

__all__ = ["FunctionInfo", "ModuleInfo", "ProjectIndex", "module_name_for"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_name_for(path: str | Path) -> str:
    """Dotted module name for a source path.

    ``.../src/repro/core/fastgrid.py`` → ``repro.core.fastgrid``;
    ``.../src/repro/core/__init__.py`` → ``repro.core``.  Paths outside
    a ``repro``/``src`` anchor fall back to the bare stem, which keeps
    fixture snippets addressable.
    """
    parts = list(PurePosixPath(Path(path).as_posix()).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    for anchor in ("repro", "src"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            tail = parts[idx:] if anchor == "repro" else parts[idx + 1 :]
            if tail:
                return ".".join(tail)
    return parts[-1] if parts else str(path)


@dataclass
class FunctionInfo:
    """One function or method definition known to the project."""

    qname: str  #: e.g. ``repro.parallel.shm.SharedArray.create``
    module: str  #: dotted module name
    name: str  #: bare function name
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_method: bool = False


@dataclass
class ModuleInfo:
    """One successfully parsed module."""

    name: str
    path: str
    rel: str
    source: str
    tree: ast.Module
    aliases: dict[str, str] = field(default_factory=dict)


class ProjectIndex:
    """Symbol table + call graph over a set of modules.

    Build once per lint run with :meth:`build`; rules reach it through
    ``ModuleContext.project`` (``None`` for single-snippet lints, which
    every consumer must tolerate — rules degrade to local inference).
    """

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        #: path → module name, for handing cached trees back to the engine.
        self.by_path: dict[str, str] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: caller qname → callee qnames (resolvable names only).
        self.call_graph: dict[str, set[str]] = {}
        #: callee qname → caller qnames.
        self.callers: dict[str, set[str]] = {}
        #: paths that failed to parse (the engine reports E901 for them).
        self.broken: dict[str, SyntaxError] = {}
        #: dtype summaries, computed lazily by repro.analysis.dtypeflow.
        self._summaries: dict[str, "FunctionSummary"] = {}
        self._in_progress: set[str] = set()

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, files: Iterable[tuple[str, str, str]]) -> "ProjectIndex":
        """Index ``(path, rel, source)`` triples.

        Parsing is tolerant: syntax errors land in :attr:`broken` and the
        rest of the project is still indexed.
        """
        from repro.analysis.engine import _annotate_parents, _collect_aliases

        index = cls()
        for path, rel, source in files:
            name = module_name_for(path)
            try:
                tree = ast.parse(source)
            except SyntaxError as exc:
                index.broken[str(path)] = exc
                continue
            _annotate_parents(tree)
            info = ModuleInfo(
                name=name,
                path=str(path),
                rel=rel,
                source=source,
                tree=tree,
                aliases=_collect_aliases(tree),
            )
            index.modules[name] = info
            index.by_path[str(path)] = name
            index._index_definitions(info)
        for info in index.modules.values():
            index._index_calls(info)
        return index

    def _index_definitions(self, info: ModuleInfo) -> None:
        """Register every def/method under its qualified name."""

        def visit(body: Iterable[ast.stmt], prefix: str, in_class: bool) -> None:
            for node in body:
                if isinstance(node, _FUNC_NODES):
                    qname = f"{prefix}.{node.name}"
                    self.functions[qname] = FunctionInfo(
                        qname=qname,
                        module=info.name,
                        name=node.name,
                        node=node,
                        is_method=in_class,
                    )
                    # Nested defs are indexed for completeness but calls
                    # to them resolve only from the same module.
                    visit(node.body, qname, in_class=False)
                elif isinstance(node, ast.ClassDef):
                    visit(node.body, f"{prefix}.{node.name}", in_class=True)

        visit(info.tree.body, info.name, in_class=False)

    def _index_calls(self, info: ModuleInfo) -> None:
        """Record caller → callee edges for resolvable callee names."""
        for fn in self.functions_in(info.name):
            callees: set[str] = set()
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                target = self.resolve_call(info, node)
                if target is not None:
                    callees.add(target.qname)
            if callees:
                self.call_graph[fn.qname] = callees
                for callee in callees:
                    self.callers.setdefault(callee, set()).add(fn.qname)

    # -- lookups -----------------------------------------------------------

    def functions_in(self, module: str) -> Iterator[FunctionInfo]:
        """Functions defined in ``module`` (methods included)."""
        prefix = module + "."
        for qname, fn in self.functions.items():
            if qname.startswith(prefix):
                yield fn

    def resolve_name(self, info: ModuleInfo, dotted: str) -> FunctionInfo | None:
        """Resolve an alias-resolved dotted name to a known function.

        Tries, in order: the name as an absolute qname; relative imports
        anchored at the module's package; a module-local definition
        (``helper`` or ``Class.method`` used unqualified).
        """
        candidates = [dotted]
        if dotted.startswith("."):
            # ``from .validation import f`` in repro.utils.numeric →
            # ``.validation.f`` → ``repro.utils.validation.f``.
            package = info.name.rsplit(".", 1)[0] if "." in info.name else ""
            stripped = dotted.lstrip(".")
            hops = len(dotted) - len(stripped) - 1
            for _ in range(hops):
                package = package.rsplit(".", 1)[0] if "." in package else ""
            if package:
                candidates.append(f"{package}.{stripped}")
        candidates.append(f"{info.name}.{dotted}")
        for candidate in candidates:
            if candidate in self.functions:
                return self.functions[candidate]
        return None

    def resolve_call(self, info: ModuleInfo, call: ast.Call) -> FunctionInfo | None:
        """Resolve a call's target through the module's alias map."""
        dotted = _dotted_name(call.func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved = info.aliases.get(head, head)
        canonical = f"{resolved}.{rest}" if rest else resolved
        return self.resolve_name(info, canonical)

    # -- dtype summaries (filled by repro.analysis.dtypeflow) --------------

    def summary_for(self, qname: str) -> "FunctionSummary":
        """Dtype summary for ``qname``, computed on first use.

        Cycle-safe: while a summary is being computed, re-entrant
        requests for the same function observe the UNKNOWN summary, so
        recursive and mutually recursive call chains terminate (one
        non-widening pass — the lattice is finite and UNKNOWN is top).
        """
        from repro.analysis.dtypeflow import (
            UNKNOWN_SUMMARY,
            summarise_function,
        )

        if qname in self._summaries:
            return self._summaries[qname]
        if qname in self._in_progress:
            return UNKNOWN_SUMMARY
        fn = self.functions.get(qname)
        if fn is None:
            return UNKNOWN_SUMMARY
        self._in_progress.add(qname)
        try:
            summary = summarise_function(fn, self.modules[fn.module], self)
        finally:
            self._in_progress.discard(qname)
        self._summaries[qname] = summary
        return summary


def _dotted_name(node: ast.AST) -> str | None:
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def index_sources(paths: Mapping[str, tuple[str, str]]) -> ProjectIndex:
    """Convenience: build from ``{path: (rel, source)}`` (tests use this)."""
    return ProjectIndex.build(
        (path, rel, source) for path, (rel, source) in paths.items()
    )
