"""Intraprocedural dtype propagation over a four-point lattice.

The float32 fast path (ROADMAP item 1) and the distributed fold
(item 2) both rest on one invariant: *a value's precision is chosen
once, at a named seed, and never drifts silently*.  This module gives
the DTY rules the machinery to check that statically:

* a **lattice** of abstract dtypes — ``FLOAT32``, ``FLOAT64``, ``INT``,
  ``UNKNOWN`` (top).  There is no bottom in practice: everything starts
  unknown and only seeds refine it.
* **seeds**: literal dtypes on ``np.asarray``/``np.zeros``/…,
  ``.astype(...)`` casts, float/int literals, and numpy's documented
  float64 defaults.
* **propagation** through assignments, arithmetic (with numpy's
  promotion rules: float64 wins, int promotes to float), subscripts,
  dtype-preserving methods (``reshape``/``ravel``/``copy``/…), and —
  the whole-program part — *calls*, via per-function summaries computed
  on demand from the :class:`~repro.analysis.project.ProjectIndex`.

Summaries are deliberately simple: a function's return dtype is either
a lattice value or *follows a dtype parameter* (``as_float_array``
returns whatever ``dtype=`` names, defaulting to float64).  That is
enough to type the validation funnel the whole numerics stack leans on
(``ensure_bandwidths`` → ``as_float_array`` → ``np.asarray(dtype=…)``),
which is exactly the chain the redundant-cast rule needs to see through.

Every conclusion errs toward ``UNKNOWN``: the DTY rules only fire on
*certain* knowledge, so over-approximation produces silence, never
false alarms.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.project import FunctionInfo, ModuleInfo, ProjectIndex

__all__ = [
    "DType",
    "DtypeEvent",
    "FunctionSummary",
    "UNKNOWN_SUMMARY",
    "analyse_function",
    "analyse_module",
    "dtype_from_spec",
    "summarise_function",
]


class DType(Enum):
    """Abstract element dtype of an expression."""

    FLOAT32 = "float32"
    FLOAT64 = "float64"
    INT = "int"
    UNKNOWN = "unknown"

    def is_float(self) -> bool:
        return self in (DType.FLOAT32, DType.FLOAT64)


def join(a: DType, b: DType) -> DType:
    """Lattice join: agreement stays, disagreement widens to UNKNOWN."""
    return a if a is b else DType.UNKNOWN


def promote(a: DType, b: DType) -> DType:
    """Numpy arithmetic promotion (not the lattice join).

    float64 beats float32 beats int; any UNKNOWN operand poisons the
    result.  Mixing the two float widths is legal numpy — that is what
    makes it a *silent* hazard, and why the mix itself is reported as an
    event rather than an inference failure.
    """
    if a is DType.UNKNOWN or b is DType.UNKNOWN:
        return DType.UNKNOWN
    if DType.FLOAT64 in (a, b):
        return DType.FLOAT64
    if DType.FLOAT32 in (a, b):
        return DType.FLOAT32
    return DType.INT


@dataclass(frozen=True)
class DtypeEvent:
    """One dtype-flow fact a DTY rule may report.

    kind:
        ``narrow``    — a certain float64 value cast to float32;
        ``mixed``     — float32 and float64 met in an accumulation;
        ``redundant`` — a cast to the dtype the value already has.
    """

    kind: str
    node: ast.AST
    source: DType
    target: DType
    detail: str = ""


#: Return-dtype marker: "whatever the ``dtype`` argument names".
@dataclass(frozen=True)
class FollowsParam:
    param: str
    default: DType


@dataclass(frozen=True)
class FunctionSummary:
    """What a call to this function returns, dtype-wise."""

    returns: DType | FollowsParam = DType.UNKNOWN

    def at_call(
        self, call: ast.Call, resolver: "_Resolver", env: Mapping[str, DType]
    ) -> DType:
        if isinstance(self.returns, DType):
            return self.returns
        follows = self.returns
        for kw in call.keywords:
            if kw.arg == follows.param:
                spec = dtype_from_spec(kw.value, resolver)
                return spec if spec is not None else DType.UNKNOWN
        return follows.default


UNKNOWN_SUMMARY = FunctionSummary()

# -- dtype spec evaluation ---------------------------------------------------

#: Canonical names that denote a dtype when used as a ``dtype=`` argument.
_SPEC_NAMES: dict[str, DType] = {
    "float": DType.FLOAT64,
    "numpy.float64": DType.FLOAT64,
    "numpy.double": DType.FLOAT64,
    "numpy.float32": DType.FLOAT32,
    "numpy.single": DType.FLOAT32,
    "int": DType.INT,
    "numpy.int64": DType.INT,
    "numpy.int32": DType.INT,
    "numpy.intp": DType.INT,
}

_SPEC_STRINGS: dict[str, DType] = {
    "float64": DType.FLOAT64,
    "f8": DType.FLOAT64,
    "double": DType.FLOAT64,
    "float32": DType.FLOAT32,
    "f4": DType.FLOAT32,
    "single": DType.FLOAT32,
    "int32": DType.INT,
    "int64": DType.INT,
}

#: ndarray methods that return a view/copy with the same element dtype.
_PRESERVING_METHODS = frozenset(
    {"reshape", "ravel", "copy", "flatten", "transpose", "squeeze", "clip",
     "cumsum", "sum", "min", "max", "mean", "take", "repeat", "item"}
)

#: numpy functions returning the dtype of their first array argument.
_PRESERVING_FUNCS = frozenset(
    {
        "numpy.abs",
        "numpy.absolute",
        "numpy.ascontiguousarray",
        "numpy.atleast_1d",
        "numpy.broadcast_to",
        "numpy.concatenate",
        "numpy.cumsum",
        "numpy.maximum",
        "numpy.minimum",
        "numpy.ravel",
        "numpy.repeat",
        "numpy.reshape",
        "numpy.sort",
        "numpy.squeeze",
        "numpy.stack",
        "numpy.tile",
        "numpy.vstack",
        "numpy.where",  # promote of last two args; first arg is the mask
    }
)

#: numpy allocators whose dtype defaults to float64 when unspecified.
_FLOAT64_DEFAULT_ALLOCATORS = frozenset(
    {"numpy.empty", "numpy.zeros", "numpy.ones", "numpy.full", "numpy.linspace",
     "numpy.zeros_like", "numpy.ones_like", "numpy.empty_like", "numpy.full_like"}
)

#: Integer-valued attribute reads on arrays (exact arithmetic, never float).
_INT_ATTRS = frozenset({"size", "nbytes", "itemsize", "ndim", "start", "stop"})


def dtype_from_spec(node: ast.expr, resolver: "_Resolver") -> DType | None:
    """Evaluate a ``dtype=`` argument expression; None when unrecognised."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _SPEC_STRINGS.get(node.value)
    name = resolver.canonical(node)
    if name is not None:
        return _SPEC_NAMES.get(name)
    if (
        isinstance(node, ast.Call)
        and resolver.canonical(node.func) == "numpy.dtype"
        and node.args
    ):
        return dtype_from_spec(node.args[0], resolver)
    return None


class _Resolver:
    """Alias-aware name resolution + project summary lookup."""

    def __init__(self, info: "ModuleInfo", project: "ProjectIndex | None"):
        self.info = info
        self.project = project

    def canonical(self, node: ast.AST) -> str | None:
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        raw = ".".join(reversed(parts))
        head, _, rest = raw.partition(".")
        resolved = self.info.aliases.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved

    def summary_for_call(self, call: ast.Call) -> FunctionSummary | None:
        if self.project is None:
            # Single-snippet mode: local defs still resolve.
            return None
        target = self.project.resolve_call(self.info, call)
        if target is None:
            return None
        return self.project.summary_for(target.qname)


# -- the propagation walk ----------------------------------------------------


class _FunctionFlow:
    """One pass of forward dtype propagation over a function body."""

    def __init__(self, resolver: _Resolver):
        self.resolver = resolver
        self.env: dict[str, DType] = {}
        self.events: list[DtypeEvent] = []
        self.expr_types: dict[ast.expr, DType] = {}

    # -- expressions -------------------------------------------------------

    def eval(self, node: ast.expr) -> DType:
        result = self._eval(node)
        self.expr_types[node] = result
        return result

    def _eval(self, node: ast.expr) -> DType:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return DType.INT
            if isinstance(node.value, float):
                return DType.FLOAT64
            if isinstance(node.value, int):
                return DType.INT
            return DType.UNKNOWN
        if isinstance(node, ast.Name):
            return self.env.get(node.id, DType.UNKNOWN)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left)
            right = self.eval(node.right)
            if {left, right} == {DType.FLOAT32, DType.FLOAT64}:
                self.events.append(
                    DtypeEvent(
                        "mixed",
                        node,
                        source=DType.FLOAT32,
                        target=DType.FLOAT64,
                        detail="float32 and float64 meet in arithmetic",
                    )
                )
            if isinstance(node.op, (ast.Div,)):
                out = promote(left, right)
                return DType.FLOAT64 if out is DType.INT else out
            return promote(left, right)
        if isinstance(node, ast.IfExp):
            return join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.Subscript):
            # Array indexing/slicing preserves the element dtype.
            return self.eval(node.value)
        if isinstance(node, ast.Attribute):
            if node.attr in _INT_ATTRS:
                return DType.INT
            if node.attr == "T":
                return self.eval(node.value)
            return DType.UNKNOWN
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.List, ast.Tuple)):
            result = DType.UNKNOWN
            if node.elts:
                result = self.eval(node.elts[0])
                for el in node.elts[1:]:
                    result = join(result, self.eval(el))
            return result
        if isinstance(node, ast.Compare):
            return DType.INT  # boolean mask
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            # Evaluate the element under UNKNOWN loop targets so facts
            # like ``a.nbytes for a in seen`` (provably int) survive.
            for gen in node.generators:
                self.eval(gen.iter)
                self._bind(gen.target, DType.UNKNOWN)
            return self.eval(node.elt)
        return DType.UNKNOWN

    def _dtype_kwarg(self, call: ast.Call) -> DType | None:
        for kw in call.keywords:
            if kw.arg == "dtype":
                return dtype_from_spec(kw.value, self.resolver)
        return None

    def _eval_call(self, call: ast.Call) -> DType:
        # Arguments are expressions too: evaluate them all up front so
        # casts nested in call arguments (``f(grid.astype(float))``)
        # still produce their events.  Re-evaluation by the branches
        # below is harmless — consumers dedupe events by position.
        if not (
            isinstance(call.func, ast.Attribute) and call.func.attr == "astype"
        ):
            for arg in call.args:
                self.eval(arg)
            for kw in call.keywords:
                if kw.arg != "dtype":
                    self.eval(kw.value)

        # ``value.astype(spec)`` — the cast seed and both cast events.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "astype"
        ):
            source = self.eval(call.func.value)
            target: DType | None = None
            if call.args:
                target = dtype_from_spec(call.args[0], self.resolver)
            if target is None:
                target = self._dtype_kwarg(call)
            if target is None:
                return DType.UNKNOWN
            if source is DType.FLOAT64 and target is DType.FLOAT32:
                self.events.append(
                    DtypeEvent("narrow", call, source, target)
                )
            elif source is target and source is not DType.UNKNOWN:
                self.events.append(
                    DtypeEvent("redundant", call, source, target)
                )
            return target

        name = self.resolver.canonical(call.func)
        if name is not None:
            if name in ("numpy.asarray", "numpy.array", "numpy.asfarray"):
                spec = self._dtype_kwarg(call)
                if spec is not None:
                    source = (
                        self.eval(call.args[0]) if call.args else DType.UNKNOWN
                    )
                    if source is DType.FLOAT64 and spec is DType.FLOAT32:
                        self.events.append(
                            DtypeEvent("narrow", call, source, spec)
                        )
                    return spec
                return self.eval(call.args[0]) if call.args else DType.UNKNOWN
            if name in _FLOAT64_DEFAULT_ALLOCATORS:
                spec = self._dtype_kwarg(call)
                if spec is not None:
                    return spec
                if name.endswith("_like") and call.args:
                    return self.eval(call.args[0])
                return DType.FLOAT64
            if name in _PRESERVING_FUNCS:
                if name == "numpy.where" and len(call.args) == 3:
                    return promote(
                        self.eval(call.args[1]), self.eval(call.args[2])
                    )
                return self.eval(call.args[0]) if call.args else DType.UNKNOWN
            if name in ("numpy.bincount", "numpy.dot", "numpy.add"):
                # float64 weights / operands dominate in this codebase;
                # stay UNKNOWN unless an operand is certain.
                if call.args:
                    out = self.eval(call.args[0])
                    for arg in call.args[1:]:
                        out = promote(out, self.eval(arg))
                    return out
                return DType.UNKNOWN
            if name == "float":
                return DType.FLOAT64
            if name in ("int", "len", "round", "numpy.searchsorted",
                        "numpy.argsort", "numpy.arange"):
                if name == "numpy.arange":
                    spec = self._dtype_kwarg(call)
                    if spec is not None:
                        return spec
                    return DType.UNKNOWN
                return DType.INT

        # Dtype-preserving ndarray methods (receiver's dtype flows out).
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _PRESERVING_METHODS
        ):
            receiver = self.eval(call.func.value)
            if receiver is not DType.UNKNOWN:
                return receiver

        # Project-resolved calls: the whole-program hop.
        summary = self.resolver.summary_for_call(call)
        if summary is not None:
            return summary.at_call(call, self.resolver, self.env)
        return DType.UNKNOWN

    # -- statements --------------------------------------------------------

    def run(self, body: list[ast.stmt]) -> None:
        self._exec_block(body)

    def _exec_block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id, DType.UNKNOWN)
            else:
                current = self.eval(stmt.target)
            if {current, value} == {DType.FLOAT32, DType.FLOAT64}:
                self.events.append(
                    DtypeEvent(
                        "mixed",
                        stmt,
                        source=value,
                        target=current,
                        detail="accumulation mixes float32 and float64",
                    )
                )
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = promote(current, value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_dtype = self.eval(stmt.iter)
            self._bind(stmt.target, iter_dtype)
            # Two passes so dtypes fed back across iterations settle.
            self._exec_block(stmt.body)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._exec_block(stmt.body)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            before = dict(self.env)
            self._exec_block(stmt.body)
            after_body = self.env
            self.env = before
            self._exec_block(stmt.orelse)
            merged = {
                name: join(
                    after_body.get(name, DType.UNKNOWN),
                    self.env.get(name, DType.UNKNOWN),
                )
                for name in set(after_body) | set(self.env)
            }
            self.env = merged
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self.eval(stmt.value)
        # Nested defs/classes are separate scopes; their bodies are
        # analysed when *they* are the function under analysis.

    def _bind(self, target: ast.expr, value: DType) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                self._bind(el, DType.UNKNOWN)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, DType.UNKNOWN)
        # Subscript/attribute stores don't rebind a variable's dtype.


@dataclass
class FunctionAnalysis:
    """Everything the DTY rules need about one analysed function."""

    node: ast.FunctionDef | ast.AsyncFunctionDef | None
    env: dict[str, DType] = field(default_factory=dict)
    events: list[DtypeEvent] = field(default_factory=list)
    expr_types: dict[ast.expr, DType] = field(default_factory=dict)

    def dtype_of(self, node: ast.expr) -> DType:
        return self.expr_types.get(node, DType.UNKNOWN)


def _seed_params(
    node: ast.FunctionDef | ast.AsyncFunctionDef, resolver: _Resolver
) -> dict[str, DType]:
    """Parameter dtypes from annotations and defaults (conservative)."""
    env: dict[str, DType] = {}
    args = node.args
    positional = args.posonlyargs + args.args
    defaults: list[ast.expr | None] = [None] * (
        len(positional) - len(args.defaults)
    ) + list(args.defaults)
    for arg, default in zip(positional, defaults):
        seeded = _dtype_from_annotation(arg.annotation)
        if seeded is None and default is not None:
            spec = dtype_from_spec(default, resolver)
            if spec is not None and arg.arg == "dtype":
                seeded = None  # dtype params carry a *spec*, not a value
        if seeded is not None:
            env[arg.arg] = seeded
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        seeded = _dtype_from_annotation(arg.annotation)
        if seeded is not None:
            env[arg.arg] = seeded
    return env


def _dtype_from_annotation(annotation: ast.expr | None) -> DType | None:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name):
        if annotation.id == "float":
            return DType.FLOAT64
        if annotation.id == "int":
            return DType.INT
    return None


def analyse_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    info: "ModuleInfo",
    project: "ProjectIndex | None",
) -> FunctionAnalysis:
    """Propagate dtypes through one function body."""
    resolver = _Resolver(info, project)
    flow = _FunctionFlow(resolver)
    flow.env.update(_seed_params(node, resolver))
    flow.run(node.body)
    return FunctionAnalysis(
        node=node, env=flow.env, events=flow.events, expr_types=flow.expr_types
    )


def analyse_module_level(
    info: "ModuleInfo", project: "ProjectIndex | None"
) -> FunctionAnalysis:
    """Propagate dtypes through module-level statements."""
    resolver = _Resolver(info, project)
    flow = _FunctionFlow(resolver)
    body = [
        stmt
        for stmt in info.tree.body
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    ]
    flow.run(body)
    return FunctionAnalysis(
        node=None, env=flow.env, events=flow.events, expr_types=flow.expr_types
    )


def analyse_module(
    info: "ModuleInfo", project: "ProjectIndex | None"
) -> Iterator[FunctionAnalysis]:
    """Analyses for every function in ``info`` plus the module level."""
    for node in ast.walk(info.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield analyse_function(node, info, project)
    yield analyse_module_level(info, project)


# -- summaries ---------------------------------------------------------------


def summarise_function(
    fn: "FunctionInfo", info: "ModuleInfo", project: "ProjectIndex"
) -> FunctionSummary:
    """Return-dtype summary for one function.

    Two shapes are recognised: a concrete lattice value (every return
    statement agrees) and the *follows-dtype-parameter* pattern, where
    the returned value's dtype traces back to a ``dtype`` parameter with
    a recognisable default (``as_float_array`` and friends).
    """
    resolver = _Resolver(info, project)
    node = fn.node

    follows = _follows_dtype_param(node, resolver)
    if follows is not None:
        return FunctionSummary(returns=follows)

    flow = _FunctionFlow(resolver)
    flow.env.update(_seed_params(node, resolver))
    flow.run(node.body)
    returns = [
        stmt
        for stmt in _walk_same_scope(node)
        if isinstance(stmt, ast.Return) and stmt.value is not None
    ]
    if not returns:
        return UNKNOWN_SUMMARY
    result: DType | None = None
    for stmt in returns:
        value = flow.expr_types.get(stmt.value, DType.UNKNOWN)
        if value is DType.UNKNOWN:
            value = flow.eval(stmt.value)
        result = value if result is None else join(result, value)
    return FunctionSummary(returns=result if result is not None else DType.UNKNOWN)


def _walk_same_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _follows_dtype_param(
    node: ast.FunctionDef | ast.AsyncFunctionDef, resolver: _Resolver
) -> FollowsParam | None:
    """Detect the ``def f(..., dtype=np.float64): return asarray(x, dtype=dtype)``
    shape, where the function's return dtype is whatever the caller passed."""
    args = node.args
    positional = args.posonlyargs + args.args
    dtype_default: DType | None = None
    defaults: list[ast.expr | None] = [None] * (
        len(positional) - len(args.defaults)
    ) + list(args.defaults)
    for arg, default in zip(positional, defaults):
        if arg.arg == "dtype" and default is not None:
            dtype_default = dtype_from_spec(default, resolver)
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg == "dtype" and default is not None:
            dtype_default = dtype_from_spec(default, resolver)
    if dtype_default is None:
        return None
    # The dtype parameter must actually reach an asarray/astype seed that
    # flows (through preserving operations) to every return.
    uses_dtype = any(
        isinstance(sub, ast.keyword)
        and sub.arg == "dtype"
        and isinstance(sub.value, ast.Name)
        and sub.value.id == "dtype"
        for sub in ast.walk(node)
    )
    if not uses_dtype:
        return None
    return FollowsParam(param="dtype", default=dtype_default)
