"""The diagnostic record emitted by every rule."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Finding", "SYNTAX_RULE_ID"]

#: Pseudo-rule id used when a file cannot be parsed at all.  It is not a
#: registered rule and cannot be suppressed.
SYNTAX_RULE_ID = "E901"


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule violation anchored to a source location.

    Ordering is (path, line, col, rule_id) so sorted findings read like a
    compiler log.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """``path:line:col: RULE message`` — the text-reporter line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (stable key order for the reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
