"""The ``repro-lint`` console script.

Usage::

    repro-lint src/                      # lint a tree, text report
    repro-lint --format json src/repro   # machine-readable
    repro-lint --select NUM001,NUM004 f.py
    repro-lint --list-rules

Exit status: 0 when clean, 1 when findings (or unparsable files) exist.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import LintEngine
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import RULE_REGISTRY

__all__ = ["main", "build_parser"]


def _split_rules(text: str | None) -> list[str] | None:
    if text is None:
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-aware static analysis for the repro codebase: "
        "numerical correctness, hot-path hygiene, parallel/device safety.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories are walked for *.py)",
    )
    parser.add_argument(
        "-f",
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        type=str,
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        type=str,
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule_id, cls in sorted(RULE_REGISTRY.items()):
        lines.append(f"{rule_id}  {cls.summary}")
        lines.append(f"        {cls.rationale}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print(_list_rules())
        return 0
    if not args.paths:
        parser.error("no paths given (or use --list-rules)")
    select = _split_rules(args.select)
    ignore = _split_rules(args.ignore)
    unknown = sorted(
        set((select or []) + (ignore or [])) - set(RULE_REGISTRY)
    )
    if unknown:
        parser.error(
            f"unknown rule id(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(RULE_REGISTRY))})"
        )
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"path does not exist: {', '.join(missing)}")
    engine = LintEngine(select=select, ignore=ignore)
    findings = engine.lint_paths(args.paths)
    if args.format == "json":
        _print(render_json(findings))
    else:
        _print(render_text(findings))
    return 1 if findings else 0


def _print(text: str) -> None:
    """Print, exiting quietly when the reader (e.g. ``head``) hung up."""
    try:
        print(text)
    except BrokenPipeError:  # pragma: no cover - pipeline plumbing
        try:
            sys.stdout.close()
        finally:
            raise SystemExit(0)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
