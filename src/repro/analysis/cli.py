"""The ``repro-lint`` console script.

Usage::

    repro-lint src/                      # lint a tree, text report
    repro-lint --format json src/repro   # machine-readable
    repro-lint --format sarif --output lint.sarif src/
    repro-lint --baseline lint-baseline.json src/   # ratchet: new-only
    repro-lint --update-baseline lint-baseline.json src/
    repro-lint --changed src/            # report only git-dirty files
    repro-lint --select NUM001,NUM004 f.py
    repro-lint --list-rules

Exit status: 0 when clean (or every finding is baselined), 1 when new
findings (or unparsable files) exist.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import Baseline, BaselineError, partition
from repro.analysis.changed import GitError, changed_files
from repro.analysis.engine import LintEngine
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import RULE_REGISTRY
from repro.analysis.sarif import render_sarif

__all__ = ["main", "build_parser"]


def _split_rules(text: str | None) -> list[str] | None:
    if text is None:
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-aware static analysis for the repro codebase: "
        "numerical correctness, dtype flow, determinism, concurrency "
        "lifecycles, hot-path hygiene, parallel/device safety.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories are walked for *.py)",
    )
    parser.add_argument(
        "-f",
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=str,
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select",
        type=str,
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        type=str,
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default=None,
        metavar="FILE",
        help="ratchet file: only findings NOT recorded in FILE fail the run",
    )
    parser.add_argument(
        "--update-baseline",
        type=str,
        default=None,
        metavar="FILE",
        help="write the current findings to FILE as the new baseline and exit 0",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="report only files modified in git (staged/unstaged/untracked); "
        "the whole-program index still covers every given path",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule_id, cls in sorted(RULE_REGISTRY.items()):
        lines.append(f"{rule_id}  {cls.summary}")
        lines.append(f"        {cls.rationale}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _emit(_list_rules(), args.output)
        return 0
    if not args.paths:
        parser.error("no paths given (or use --list-rules)")
    select = _split_rules(args.select)
    ignore = _split_rules(args.ignore)
    unknown = sorted(
        set((select or []) + (ignore or [])) - set(RULE_REGISTRY)
    )
    if unknown:
        parser.error(
            f"unknown rule id(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(RULE_REGISTRY))})"
        )
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"path does not exist: {', '.join(missing)}")
    if args.baseline and args.update_baseline:
        parser.error("--baseline and --update-baseline are mutually exclusive")

    engine = LintEngine(select=select, ignore=ignore)
    findings = engine.lint_paths(args.paths)

    if args.changed:
        # The full project was indexed above; only the *report* narrows.
        try:
            dirty = changed_files()
        except GitError as exc:
            parser.error(str(exc))
        findings = [
            f for f in findings if Path(f.path).resolve() in dirty
        ]

    if args.update_baseline:
        Baseline.from_findings(findings).save(args.update_baseline)
        _emit(
            f"baseline written: {len(findings)} finding(s) recorded to "
            f"{args.update_baseline}",
            None,
        )
        return 0

    baselined: list = []
    if args.baseline:
        try:
            ratchet = Baseline.load(args.baseline)
        except BaselineError as exc:
            parser.error(str(exc))
        findings, baselined = partition(findings, ratchet)

    if args.format == "sarif":
        _emit(
            render_sarif(findings, baselined=baselined).rstrip("\n"),
            args.output,
        )
    elif args.format == "json":
        _emit(render_json(findings), args.output)
    else:
        text = render_text(findings)
        if baselined:
            text += f"\n{len(baselined)} baselined finding(s) suppressed"
        _emit(text, args.output)
    return 1 if findings else 0


def _emit(text: str, output: str | None) -> None:
    """Write the report to ``output`` (or stdout, pipe-safely)."""
    if output is not None:
        Path(output).write_text(text + "\n", encoding="utf-8")
        return
    try:
        print(text)
    except BrokenPipeError:  # pragma: no cover - pipeline plumbing
        try:
            sys.stdout.close()
        finally:
            raise SystemExit(0)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
