"""Distributed sharded bandwidth selection (ROADMAP item 2).

A coordinator/worker subsystem over the serving stack's JSON-over-HTTP
protocol: the coordinator plans row blocks with the same budget planner
as the local ``blocked`` backend, leases them to worker processes with
deadlines and at-most-once fold accounting, and folds the partial
contribution rows in canonical order — so the distributed CV curve is
**byte-identical** to the local one at any fleet size, under worker
death, stragglers, duplicate deliveries, corrupt payloads, and total
fleet loss (which degrades losslessly to the local sweep).

Importing this package registers the ``distributed`` backend.
"""

from repro.distributed.backend import (
    last_fleet_report,
    resolve_fleet,
    select_distributed,
)
from repro.distributed.chaos import ChaosTransport, NetFaultSpec
from repro.distributed.coordinator import (
    CoordinatorConfig,
    FleetCoordinator,
    FleetReport,
    fleet_metrics,
)
from repro.distributed.fleet import (
    Fleet,
    HttpFleet,
    InProcessFleet,
    LocalProcessFleet,
    WorkerHandle,
)
from repro.distributed.transport import (
    HttpWorkerTransport,
    InProcessTransport,
    WorkerTransport,
)
from repro.distributed.worker import WorkerApp

__all__ = [
    "ChaosTransport",
    "CoordinatorConfig",
    "Fleet",
    "FleetCoordinator",
    "FleetReport",
    "HttpFleet",
    "HttpWorkerTransport",
    "InProcessFleet",
    "InProcessTransport",
    "LocalProcessFleet",
    "NetFaultSpec",
    "WorkerApp",
    "WorkerHandle",
    "WorkerTransport",
    "fleet_metrics",
    "last_fleet_report",
    "resolve_fleet",
    "select_distributed",
]
