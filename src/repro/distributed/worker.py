"""The fleet worker: stage a dataset once, then serve block computes.

One worker is a tiny two-endpoint service over the serving stack's
JSON-over-HTTP dialect.  The dataset (x, y, grid, kernel) is staged
*once* per sweep — per-block traffic is then just ``(start, stop)``
bounds, mirroring the shared-memory pool's O(1)-per-block IPC — and
every ``/compute`` answer is the exact
:func:`~repro.core.fastgrid.fastgrid_row_contributions` matrix for the
leased rows, checksummed over the worker's own output.

Routes
------
``GET  /healthz``   liveness + staged datasets + blocks served
                    (the coordinator's heartbeat target)
``GET  /metrics``   text metrics dump (blocks served, rows computed)
``POST /dataset``   stage ``{dataset_id, x, y, grid, kernel, dtype}``
``POST /compute``   ``{dataset_id, block_id, epoch, start, stop}`` →
                    checksummed contribution rows
``POST /shutdown``  drain and exit 0

:class:`WorkerApp.handle` is synchronous and socket-free — the chaos
suite drives it in-process through
:class:`~repro.distributed.transport.InProcessTransport`; the asyncio
wrapper here serves the *same* object over TCP for
``python -m repro.distributed.worker``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
from typing import Any, Sequence

from repro.core.fastgrid import (
    fastgrid_row_contributions,
    require_fast_grid_kernel,
)
from repro.distributed.protocol import (
    decode_compute_request,
    decode_dataset,
    encode_compute_response,
)
from repro.exceptions import (
    DistributedProtocolError,
    ReproError,
    ValidationError,
    error_code,
)
from repro.serving.metrics import MetricsRegistry

__all__ = ["WorkerApp", "run_worker_server", "main"]


class WorkerApp:
    """Route table + staged-dataset store for one fleet worker."""

    def __init__(self, worker_id: str | None = None) -> None:
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.metrics = MetricsRegistry()
        self._datasets: dict[str, dict[str, Any]] = {}
        self._m_blocks = self.metrics.counter(
            "dist_worker_blocks_total", "block computes served"
        )
        self._m_rows = self.metrics.counter(
            "dist_worker_rows_total", "contribution rows computed"
        )
        self._m_datasets = self.metrics.gauge(
            "dist_worker_datasets", "datasets currently staged"
        )

    # -- routes ------------------------------------------------------------

    def handle(
        self, method: str, path: str, body: dict[str, Any] | None
    ) -> tuple[int, dict[str, Any] | str]:
        """Dispatch one request; returns ``(status, payload)``."""
        path = path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if method == "GET" and path == "/healthz":
                return 200, self._healthz()
            if method == "GET" and path == "/metrics":
                return 200, self.metrics.render_text()
            if method == "POST" and path == "/dataset":
                return 200, self._stage(body or {})
            if method == "POST" and path == "/compute":
                return 200, self._compute(body or {})
            if method == "POST" and path == "/shutdown":
                return 200, {"status": "stopping", "worker_id": self.worker_id}
            raise ValidationError(
                f"no route for {method} {path}; available: GET /healthz, "
                "GET /metrics, POST /dataset, POST /compute, POST /shutdown"
            )
        except ReproError as exc:
            status = 400 if isinstance(exc, ValidationError) else 422
            return status, {
                "error": str(exc),
                "code": error_code(exc) or "REPRO_DIST",
            }

    def _healthz(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "worker_id": self.worker_id,
            "datasets": sorted(self._datasets),
            "blocks_served": int(self._m_blocks.value),
        }

    def _stage(self, body: dict[str, Any]) -> dict[str, Any]:
        staged = decode_dataset(body)
        require_fast_grid_kernel(staged["kernel"])
        self._datasets[staged["dataset_id"]] = staged
        self._m_datasets.set(len(self._datasets))
        return {
            "staged": staged["dataset_id"],
            "worker_id": self.worker_id,
            "n": int(staged["x"].shape[0]),
            "k": int(staged["grid"].shape[0]),
        }

    def _compute(self, body: dict[str, Any]) -> dict[str, Any]:
        request = decode_compute_request(body)
        staged = self._datasets.get(request["dataset_id"])
        if staged is None:
            raise DistributedProtocolError(
                f"dataset {request['dataset_id']!r} is not staged on "
                f"worker {self.worker_id}; staged: {sorted(self._datasets)}"
            )
        n = int(staged["x"].shape[0])
        if request["stop"] > n:
            raise DistributedProtocolError(
                f"block rows[{request['start']}:{request['stop']}) exceed "
                f"the staged dataset (n={n})"
            )
        rows = fastgrid_row_contributions(
            staged["x"],
            staged["y"],
            staged["grid"],
            staged["kernel"],
            request["start"],
            request["stop"],
            staged["dtype"],
        )
        self._m_blocks.inc()
        self._m_rows.inc(rows.shape[0])
        return encode_compute_response(request, rows, self.worker_id)


# -- the TCP wrapper ---------------------------------------------------------


async def run_worker_server(
    app: WorkerApp,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: "asyncio.Future[tuple[str, int]] | None" = None,
    shutdown_trigger: "asyncio.Event | None" = None,
) -> None:
    """Serve ``app`` over TCP until shutdown (POST /shutdown or signal).

    Reuses the serving stack's wire helpers so coordinator and worker
    speak byte-identical HTTP.  Block computes run on executor threads;
    the event loop only parses, routes, and serialises.
    """
    from repro.serving.server import _read_request, _write_response

    loop = asyncio.get_running_loop()
    stop = shutdown_trigger or asyncio.Event()

    async def handle_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await _read_request(reader)
            except ValidationError as exc:
                await _write_response(
                    writer, 400, {"error": str(exc), "code": exc.code}
                )
                return
            if request is None:
                return
            method, path, body = request
            status, payload = await loop.run_in_executor(
                None, app.handle, method, path, body
            )
            await _write_response(writer, status, payload)
            if method == "POST" and path.rstrip("/") == "/shutdown":
                stop.set()
        except (ConnectionResetError, BrokenPipeError):
            pass  # coordinator went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    server = await asyncio.start_server(handle_connection, host, port)
    sockets = server.sockets or ()
    bound = sockets[0].getsockname()[:2] if sockets else (host, 0)
    if ready is not None and not ready.done():
        ready.set_result((bound[0], int(bound[1])))
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # platform without loop signal handlers
    try:
        async with server:
            await stop.wait()
    finally:
        server.close()


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.distributed.worker`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-worker", description="repro fleet worker process"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 = let the OS pick"
    )
    parser.add_argument("--worker-id", default=None)
    args = parser.parse_args(argv)
    app = WorkerApp(worker_id=args.worker_id)

    async def run() -> None:
        loop = asyncio.get_running_loop()
        ready: asyncio.Future[tuple[str, int]] = loop.create_future()
        task = loop.create_task(
            run_worker_server(app, host=args.host, port=args.port, ready=ready)
        )
        host, port = await ready
        # The fleet spawner parses this exact line to learn the endpoint.
        print(f"repro-worker {app.worker_id} on http://{host}:{port}", flush=True)
        await task

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
