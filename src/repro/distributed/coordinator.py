"""The fleet coordinator: leases, folds, and survives a hostile fleet.

The sweep's map-reduce shape comes from PR 5: the blockwise planner
partitions ``n`` rows into budget-sized blocks whose per-observation
contribution rows (:func:`~repro.core.fastgrid.fastgrid_row_contributions`)
are partition-invariant, and the strict row-order fold
(:func:`~repro.utils.numeric.fold_rows`) makes the CV curve bit-for-bit
identical at any partition.  The coordinator distributes the *map* and
keeps the *reduce* local and canonical, so a fleet of any size — or a
fleet that is dying under it — produces byte-identical curves to the
local ``blocked`` backend.

Robustness model (the headline, per ROADMAP item 2):

* **Leases.**  Every dispatched block holds a lease ``(worker, epoch,
  deadline)``.  Results are folded **at most once**: a block already
  folded discards duplicates; a result from a superseded epoch (a
  straggler that finally answered) is discarded by epoch, never
  double-folded.
* **Stragglers.**  A lease past its deadline is speculatively
  re-dispatched under a new epoch to another live worker.
* **Heartbeats.**  Workers register via ``/healthz`` and are declared
  dead after consecutive missed heartbeats; their leases expire and
  move on.
* **Retry/backoff.**  Per-block retries reuse
  :class:`~repro.resilience.policy.RetryPolicy` — same deterministic
  jittered schedule, same ``REPRO_*`` code classification
  (:func:`~repro.resilience.degrade.is_retryable`) as the local engine's
  wave machinery.
* **Lossless degradation.**  A block that exhausts its retry budget —
  or the whole fleet going unreachable (``REPRO_DIST_FLEET_LOST``) — is
  computed locally with the *same* row function, so the answer is never
  wrong, only slower; the :class:`FleetReport` says exactly what
  happened.
"""

from __future__ import annotations

import heapq
import queue
import re
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.blockwise import plan_for
from repro.core.fastgrid import (
    fastgrid_row_contributions,
    require_fast_grid_kernel,
)
from repro.core.grid import ensure_bandwidth_grid
from repro.distributed.fleet import Fleet, WorkerHandle
from repro.distributed.protocol import (
    decode_compute_rows,
    encode_compute_request,
    encode_dataset,
)
from repro.exceptions import (
    DistributedProtocolError,
    FleetLostError,
    LeaseExpiredError,
    error_code,
)
from repro.obs.tracer import current_tracer
from repro.resilience.checkpoint import sweep_fingerprint
from repro.resilience.degrade import is_retryable
from repro.resilience.policy import RetryPolicy, run_with_retry
from repro.serving.metrics import MetricsRegistry
from repro.utils.numeric import fold_rows
from repro.utils.validation import check_paired_samples

__all__ = [
    "CoordinatorConfig",
    "FleetCoordinator",
    "FleetReport",
    "fleet_metrics",
]

#: Shared registry for per-worker health gauges; the serving /metrics
#: endpoint appends it so fleet liveness is scrapeable alongside cache
#: and scheduler metrics.
_FLEET_METRICS = MetricsRegistry()


def fleet_metrics() -> MetricsRegistry:
    """The process-wide fleet metrics registry (worker health gauges)."""
    return _FLEET_METRICS


def _gauge_name(worker_id: str) -> str:
    return "dist_worker_up_" + re.sub(r"[^A-Za-z0-9_]", "_", worker_id)


@dataclass(frozen=True)
class CoordinatorConfig:
    """Timing knobs and the retry policy of one coordinator.

    ``clock``/``sleep`` are injectable so the lease and straggler logic
    is testable against a fake clock; defaults are the real monotonic
    clock and :func:`time.sleep`.
    """

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-block lease deadline (seconds); past it the block is
    #: speculatively re-dispatched under a new epoch.
    lease_timeout: float = 30.0
    #: RPC client timeout for one /compute exchange (shared semantics
    #: with the serving deadline: REPRO_SERVE_TIMEOUT either way).
    request_timeout: float = 30.0
    #: RPC timeout for staging the dataset on one worker.
    stage_timeout: float = 60.0
    #: Seconds between heartbeat rounds during a sweep.
    heartbeat_interval: float = 2.0
    #: Timeout for one heartbeat /healthz exchange.
    heartbeat_timeout: float = 1.0
    #: Consecutive missed heartbeats before a worker is dead.
    heartbeat_misses: int = 2
    #: Main-loop tick: how long one delivery wait blocks.
    tick: float = 0.02
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep


@dataclass
class FleetReport:
    """What the coordinator did — and survived — to finish one sweep.

    The distributed twin of
    :class:`~repro.resilience.degrade.ResilienceReport`; attached to
    ``SelectionResult.diagnostics["fleet"]`` so callers can read the
    fault classes the run absorbed.
    """

    workers: list[dict[str, Any]] = field(default_factory=list)
    blocks_total: int = 0
    blocks_remote: int = 0
    #: Blocks computed locally (retry budget spent or fleet lost) —
    #: the lossless degradation path, never a wrong answer.
    blocks_local: int = 0
    dispatches: int = 0
    retries: int = 0
    stragglers: int = 0
    duplicates_discarded: int = 0
    stale_discarded: int = 0
    checksum_rejects: int = 0
    heartbeat_rounds: int = 0
    fleet_lost: bool = False
    #: Every fault absorbed: {"stage", "code", "error"} per event.
    faults: list[dict[str, str]] = field(default_factory=list)
    #: Backoff delays scheduled (seconds), in order.
    backoffs: list[float] = field(default_factory=list)

    def record_fault(self, stage: str, exc: BaseException) -> None:
        self.faults.append(
            {
                "stage": stage,
                "code": error_code(exc) or type(exc).__name__,
                "error": str(exc),
            }
        )

    @property
    def degraded(self) -> bool:
        """True when any block bypassed the fleet (local fallback)."""
        return self.fleet_lost or self.blocks_local > 0

    @property
    def fault_codes(self) -> list[str]:
        """Distinct fault classes survived, in first-seen order."""
        seen: list[str] = []
        for fault in self.faults:
            if fault["code"] not in seen:
                seen.append(fault["code"])
        return seen

    def to_dict(self) -> dict[str, Any]:
        return {
            "workers": list(self.workers),
            "blocks_total": self.blocks_total,
            "blocks_remote": self.blocks_remote,
            "blocks_local": self.blocks_local,
            "dispatches": self.dispatches,
            "retries": self.retries,
            "stragglers": self.stragglers,
            "duplicates_discarded": self.duplicates_discarded,
            "stale_discarded": self.stale_discarded,
            "checksum_rejects": self.checksum_rejects,
            "heartbeat_rounds": self.heartbeat_rounds,
            "fleet_lost": self.fleet_lost,
            "degraded": self.degraded,
            "fault_codes": self.fault_codes,
            "faults": list(self.faults),
            "backoffs": list(self.backoffs),
        }

    def summary(self) -> str:
        lines = [
            "fleet: "
            + f"{self.blocks_remote}/{self.blocks_total} blocks remote, "
            + f"{self.blocks_local} local"
            + (" (degraded)" if self.degraded else ""),
            f"  dispatches      : {self.dispatches} "
            f"({self.retries} retries, {self.stragglers} stragglers)",
            f"  discarded       : {self.duplicates_discarded} duplicate, "
            f"{self.stale_discarded} stale, "
            f"{self.checksum_rejects} checksum-rejected",
            f"  faults survived : {', '.join(self.fault_codes) or 'none'}",
        ]
        if self.fleet_lost:
            lines.append("  fleet lost      : degraded to local blocked sweep")
        return "\n".join(lines)


@dataclass
class _Lease:
    """One in-flight block: who holds it, under which epoch, until when."""

    handle: WorkerHandle
    epoch: int
    deadline: float


@dataclass
class _Delivery:
    """One completed exchange surfaced to the main loop."""

    block_id: int
    epoch: int
    handle: WorkerHandle
    payload: dict[str, Any] | None = None
    error: BaseException | None = None


class FleetCoordinator:
    """Plan blocks, lease them to workers, fold the rows canonically."""

    def __init__(
        self,
        fleet: Fleet,
        config: CoordinatorConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.fleet = fleet
        self.config = config or CoordinatorConfig()
        self.metrics = metrics if metrics is not None else fleet_metrics()
        self.report = FleetReport()

    # -- the sweep ---------------------------------------------------------

    def cv_scores(
        self,
        x: np.ndarray,
        y: np.ndarray,
        bandwidths: np.ndarray,
        kernel: str = "epanechnikov",
        *,
        memory_budget: int | float | str | None = None,
        block_rows: int | None = None,
        dtype: str = "float64",
    ) -> np.ndarray:
        """Distributed CV scores, bit-identical to ``cv_scores_blocked``."""
        x, y = check_paired_samples(x, y)
        grid = ensure_bandwidth_grid(bandwidths)
        kern = require_fast_grid_kernel(kernel)
        n = int(x.shape[0])
        k = int(grid.shape[0])
        tracer = current_tracer()
        with tracer.span(
            "fleet-sweep", n=n, k=k, kernel=kern.name, dtype=dtype,
            workers=len(self.fleet.handles),
        ) as sweep_span:
            with tracer.span("plan") as pspan:
                # output_matrix=True: the coordinator holds every
                # block's rows until the final in-order fold, the same
                # n×k budget item the shm sweep plans for.
                plan = plan_for(
                    n, k, kern.name, dtype=dtype,
                    memory_budget=memory_budget, block_rows=block_rows,
                    output_matrix=True,
                )
                pspan.set(**plan.to_dict())
            blocks = plan.blocks()
            self.report.blocks_total = len(blocks)
            dataset_id = sweep_fingerprint(
                x, y, grid, kern.name, dtype, plan.block_rows
            )[:16]
            self._register_and_stage(x, y, grid, kern.name, dtype, dataset_id)
            rows = self._run_leases(
                x, y, grid, kern.name, dtype, dataset_id, blocks, k
            )
            with tracer.span("fold", blocks=len(blocks)):
                total = np.zeros(k, dtype=np.float64)
                for block_id in range(len(blocks)):
                    fold_rows(rows[block_id], total)
            self.report.workers = self.fleet.describe()
            sweep_span.set(
                degraded=self.report.degraded,
                blocks_local=self.report.blocks_local,
                stragglers=self.report.stragglers,
            )
        return total / n

    # -- registration + staging -------------------------------------------

    def _register_and_stage(
        self,
        x: np.ndarray,
        y: np.ndarray,
        grid: np.ndarray,
        kernel_name: str,
        dtype: str,
        dataset_id: str,
    ) -> None:
        """Heartbeat-register the fleet, then stage the dataset per worker.

        Staging failures retry on the shared policy; a worker that
        cannot stage is dead for this sweep.  Losing *every* worker
        here is not fatal — the lease loop degrades to local compute.
        """
        cfg = self.config
        tracer = current_tracer()
        self.fleet.heartbeat(
            timeout=cfg.heartbeat_timeout, miss_threshold=1
        )
        self.report.heartbeat_rounds += 1
        self._publish_health()
        message = encode_dataset(dataset_id, x, y, grid, kernel_name, dtype)
        for handle in self.fleet.live():
            with tracer.span("stage", worker=handle.worker_id):
                try:
                    run_with_retry(
                        lambda h=handle: h.transport.request(
                            "POST", "/dataset", message,
                            timeout=cfg.stage_timeout,
                        ),
                        policy=cfg.policy,
                        retryable=is_retryable,
                        sleep=cfg.sleep,
                        label=f"stage dataset on {handle.worker_id}",
                    )
                except Exception as exc:
                    # Typed classification: the worker is out of this
                    # sweep, the sweep itself survives.
                    self.report.record_fault("stage", exc)
                    handle.mark_dead()
        self._publish_health()

    # -- lease loop --------------------------------------------------------

    def _run_leases(
        self,
        x: np.ndarray,
        y: np.ndarray,
        grid: np.ndarray,
        kernel_name: str,
        dtype: str,
        dataset_id: str,
        blocks: list[tuple[int, int]],
        k: int,
    ) -> dict[int, np.ndarray]:
        """Dispatch every block under a lease; return block_id → rows."""
        cfg = self.config
        tracer = current_tracer()
        rows: dict[int, np.ndarray] = {}
        epochs: dict[int, int] = {b: 0 for b in range(len(blocks))}
        attempts: dict[int, int] = {b: 0 for b in range(len(blocks))}
        leases: dict[int, _Lease] = {}
        #: (ready_at, block_id) min-heap of blocks awaiting dispatch.
        pending: list[tuple[float, int]] = [
            (0.0, block_id) for block_id in range(len(blocks))
        ]
        heapq.heapify(pending)
        deliveries: "queue.Queue[_Delivery]" = queue.Queue()
        rng = cfg.policy.jitter_rng()
        last_heartbeat = cfg.clock()

        def local_fallback(block_id: int, reason: BaseException) -> None:
            """Lossless degradation: compute this block in-process."""
            self.report.record_fault("lease", reason)
            start, stop = blocks[block_id]
            with tracer.span("degrade-local", block=block_id,
                             start=start, stop=stop):
                rows[block_id] = fastgrid_row_contributions(
                    x, y, grid, kernel_name, start, stop, dtype
                )
            self.report.blocks_local += 1
            leases.pop(block_id, None)

        def fail_block(block_id: int, exc: BaseException) -> None:
            """One failed attempt: back off and re-lease, or go local."""
            attempts[block_id] += 1
            epochs[block_id] += 1
            leases.pop(block_id, None)
            if attempts[block_id] > cfg.policy.max_retries:
                local_fallback(block_id, exc)
                return
            self.report.retries += 1
            self.report.record_fault("dispatch", exc)
            delay = cfg.policy.delay(attempts[block_id], rng)
            self.report.backoffs.append(delay)
            heapq.heappush(pending, (cfg.clock() + delay, block_id))

        executor = ThreadPoolExecutor(
            max_workers=max(2, len(self.fleet.handles) + 1),
            thread_name_prefix="repro-dist",
        )
        try:
            while len(rows) < len(blocks):
                now = cfg.clock()
                live = self.fleet.live()
                if not live and not leases:
                    remaining = [
                        b for b in range(len(blocks)) if b not in rows
                    ]
                    lost = FleetLostError(
                        f"no live workers remain with {len(remaining)} "
                        f"block(s) unfolded; degrading to the local "
                        "blocked sweep"
                    )
                    self.report.fleet_lost = True
                    for block_id in remaining:
                        local_fallback(block_id, lost)
                    break
                self._issue_leases(
                    pending, leases, epochs, rows, dataset_id, blocks,
                    deliveries, executor, now,
                )
                try:
                    delivery = deliveries.get(timeout=cfg.tick)
                except queue.Empty:
                    delivery = None
                if delivery is not None:
                    self._absorb(
                        delivery, rows, leases, epochs, k, fail_block
                    )
                # Straggler scan: expired leases re-dispatch under a
                # fresh epoch; the old result, if it ever lands, is
                # discarded by epoch.
                now = cfg.clock()
                for block_id, lease in list(leases.items()):
                    if now <= lease.deadline or block_id in rows:
                        continue
                    self.report.stragglers += 1
                    fail_block(
                        block_id,
                        LeaseExpiredError(
                            f"block {block_id} lease on "
                            f"{lease.handle.worker_id} (epoch "
                            f"{lease.epoch}) passed its "
                            f"{cfg.lease_timeout:.3f}s deadline"
                        ),
                    )
                if now - last_heartbeat >= cfg.heartbeat_interval:
                    self.fleet.heartbeat(
                        timeout=cfg.heartbeat_timeout,
                        miss_threshold=cfg.heartbeat_misses,
                    )
                    self.report.heartbeat_rounds += 1
                    self._publish_health()
                    last_heartbeat = now
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
            self._publish_health()
        return rows

    def _issue_leases(
        self,
        pending: list[tuple[float, int]],
        leases: dict[int, _Lease],
        epochs: dict[int, int],
        rows: dict[int, np.ndarray],
        dataset_id: str,
        blocks: list[tuple[int, int]],
        deliveries: "queue.Queue[_Delivery]",
        executor: ThreadPoolExecutor,
        now: float,
    ) -> None:
        """Hand ready blocks to idle live workers (one in flight each)."""
        cfg = self.config
        busy = {lease.handle.worker_id for lease in leases.values()}
        idle = [
            h for h in self.fleet.live() if h.worker_id not in busy
        ]
        while idle and pending and pending[0][0] <= now:
            _, block_id = heapq.heappop(pending)
            if block_id in rows or block_id in leases:
                continue
            handle = idle.pop(0)
            epoch = epochs[block_id]
            start, stop = blocks[block_id]
            leases[block_id] = _Lease(
                handle=handle, epoch=epoch,
                deadline=now + cfg.lease_timeout,
            )
            busy.add(handle.worker_id)
            handle.dispatched += 1
            self.report.dispatches += 1
            request = encode_compute_request(
                dataset_id, block_id, epoch, start, stop
            )

            def exchange(
                h: WorkerHandle = handle,
                req: dict[str, Any] = request,
                bid: int = block_id,
                ep: int = epoch,
            ) -> None:
                try:
                    payload = h.transport.request(
                        "POST", "/compute", req,
                        timeout=cfg.request_timeout,
                    )
                except Exception as exc:
                    # The main loop classifies by REPRO_* code.
                    deliveries.put(
                        _Delivery(block_id=bid, epoch=ep, handle=h, error=exc)
                    )
                    return
                deliveries.put(
                    _Delivery(block_id=bid, epoch=ep, handle=h, payload=payload)
                )
                for extra in h.transport.drain_duplicates():
                    deliveries.put(
                        _Delivery(
                            block_id=int(extra.get("block_id", bid)),
                            epoch=int(extra.get("epoch", ep)),
                            handle=h,
                            payload=extra,
                        )
                    )

            executor.submit(exchange)

    def _absorb(
        self,
        delivery: _Delivery,
        rows: dict[int, np.ndarray],
        leases: dict[int, _Lease],
        epochs: dict[int, int],
        k: int,
        fail_block: Callable[[int, BaseException], None],
    ) -> None:
        """Fold-or-discard one delivery under at-most-once accounting."""
        block_id = delivery.block_id
        current = epochs.get(block_id)
        if block_id in rows:
            # Already folded: a duplicate delivery (or a straggler that
            # beat its replacement).  Never fold twice.
            self.report.duplicates_discarded += 1
            return
        if current is None or delivery.epoch != current:
            # A superseded lease answered late; its replacement owns
            # the block now.
            self.report.stale_discarded += 1
            return
        if delivery.error is not None:
            delivery.handle.record_miss(self.config.heartbeat_misses)
            fail_block(block_id, delivery.error)
            return
        assert delivery.payload is not None
        try:
            decoded = decode_compute_rows(delivery.payload, k)
        except Exception as exc:
            if error_code(exc) == "REPRO_DIST_CHECKSUM":
                self.report.checksum_rejects += 1
            fail_block(block_id, exc)
            return
        lease = leases.pop(block_id, None)
        if lease is None:
            raise DistributedProtocolError(
                f"delivery for block {block_id} epoch {delivery.epoch} "
                "matches no lease — accounting bug"
            )
        rows[block_id] = decoded
        self.report.blocks_remote += 1
        delivery.handle.record_success()

    # -- health gauges -----------------------------------------------------

    def _publish_health(self) -> None:
        """Mirror fleet liveness into the shared /metrics registry."""
        for handle in self.fleet.handles:
            gauge = self.metrics.gauge(
                _gauge_name(handle.worker_id),
                f"worker {handle.worker_id} liveness (1 = up)",
            )
            gauge.set(1.0 if handle.alive else 0.0)
