"""Deterministic network-fault injection for the fleet (chaos harness).

The in-process twin of :mod:`repro.resilience.faults`, moved to the
wire: a :class:`ChaosTransport` wraps a real transport and replays a
seeded schedule of the faults a hostile network actually produces —

==============  ========================================================
``drop``        the request never reaches the worker
                (``REPRO_DIST_UNREACHABLE``; nothing ran)
``hang``        the worker accepts but never answers within the client
                timeout (``REPRO_SERVE_TIMEOUT``; outcome unknown)
``delay``       the work *runs* but the response arrives after a real
                sleep — late enough to expire the lease, so the stale
                epoch is discarded on arrival
``duplicate``   the response is delivered twice (the second copy must
                hit the at-most-once fold accounting)
``corrupt``     one row value is perturbed after checksumming, so the
                coordinator's verification must reject the payload
``die``         the worker is dead from this call on — every later
                request (heartbeats included) fails unreachable
==============  ========================================================

Like :class:`~repro.resilience.faults.FaultSpec`, triggers are
*counter*-based: the Nth ``/compute`` call through this transport
faults, regardless of wall clock or thread interleaving, so a chaos
run replays bit-for-bit from its ``REPRO_CHAOS_SEED``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import (
    ServeTimeoutError,
    ValidationError,
    WorkerUnavailableError,
)
from repro.utils.rng import derive_rng

__all__ = ["NetFaultSpec", "ChaosTransport", "seeded_compute_faults", "FAULT_KINDS"]

FAULT_KINDS = ("drop", "hang", "delay", "duplicate", "corrupt", "die")


@dataclass(frozen=True)
class NetFaultSpec:
    """One deterministic network fault: which calls, which failure."""

    kind: str
    #: 1-based ``/compute`` call indices (per transport) that trigger.
    at: tuple[int, ...] = ()
    #: Real sleep for ``delay`` faults (seconds) — sized by the test to
    #: overshoot the coordinator's lease deadline.
    delay_s: float = 0.2
    #: Cap on total triggers (None = every listed index).
    max_triggers: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValidationError(
                f"unknown chaos kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if any(i < 1 for i in self.at):
            raise ValidationError("chaos trigger indices are 1-based")


class ChaosTransport:
    """A transport that faults on schedule; everything else passes through."""

    def __init__(
        self,
        inner: Any,
        specs: tuple[NetFaultSpec, ...] | list[NetFaultSpec] = (),
        *,
        sleep: Any = time.sleep,
    ) -> None:
        self._inner = inner
        self._specs = tuple(specs)
        self._sleep = sleep
        self.endpoint = getattr(inner, "endpoint", "chaos")
        self._compute_calls = 0
        self._triggers: dict[int, int] = {}
        self._duplicates: list[dict[str, Any]] = []
        self._dead = False
        #: (kind, call index) of every fault fired, for test assertions.
        self.fired: list[tuple[str, int]] = []

    def _match(self) -> NetFaultSpec | None:
        for idx, spec in enumerate(self._specs):
            used = self._triggers.get(idx, 0)
            if spec.max_triggers is not None and used >= spec.max_triggers:
                continue
            if self._compute_calls in spec.at:
                self._triggers[idx] = used + 1
                return spec
        return None

    def request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        *,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        if self._dead:
            raise WorkerUnavailableError(
                f"worker {self.endpoint} is dead (chaos: die)"
            )
        if path != "/compute":
            return self._inner.request(method, path, body, timeout=timeout)
        self._compute_calls += 1
        spec = self._match()
        if spec is None:
            return self._inner.request(method, path, body, timeout=timeout)
        self.fired.append((spec.kind, self._compute_calls))
        if spec.kind == "die":
            self._dead = True
            raise WorkerUnavailableError(
                f"worker {self.endpoint} killed mid-block (chaos: die)"
            )
        if spec.kind == "drop":
            raise WorkerUnavailableError(
                f"request to {self.endpoint} dropped (chaos: drop)"
            )
        if spec.kind == "hang":
            # The work may or may not have run; the client only knows
            # the socket went quiet.  Run it so "unknown outcome" is
            # real, then time out.
            self._inner.request(method, path, body, timeout=timeout)
            raise ServeTimeoutError(
                f"worker {self.endpoint} hung past the client timeout "
                "(chaos: hang)"
            )
        payload = None
        if spec.kind == "delay":
            self._sleep(spec.delay_s)
            payload = self._inner.request(method, path, body, timeout=timeout)
        elif spec.kind == "duplicate":
            payload = self._inner.request(method, path, body, timeout=timeout)
            self._duplicates.append(dict(payload))
        elif spec.kind == "corrupt":
            payload = self._inner.request(method, path, body, timeout=timeout)
            payload = _corrupt_rows(payload)
        assert payload is not None
        return payload

    def drain_duplicates(self) -> list[dict[str, Any]]:
        extra, self._duplicates = self._duplicates, []
        extra.extend(self._inner.drain_duplicates())
        return extra


def _corrupt_rows(payload: dict[str, Any]) -> dict[str, Any]:
    """Perturb one row value *after* the worker checksummed its output."""
    damaged = dict(payload)
    rows = [list(row) for row in damaged.get("rows", [])]
    if rows and rows[0]:
        rows[0][0] = float(rows[0][0]) + 1.0 if rows[0][0] is not None else 1.0
        damaged["rows"] = rows
    else:
        damaged["checksum"] = "0" * 64
    return damaged


def seeded_compute_faults(
    seed: int,
    worker_id: str,
    *,
    n_blocks: int,
    kinds: tuple[str, ...] = ("drop", "hang", "duplicate", "corrupt"),
    rate: float = 0.25,
    delay_s: float = 0.2,
) -> tuple[NetFaultSpec, ...]:
    """A reproducible fault schedule for one worker's transport.

    The schedule is a pure function of ``(seed, worker_id)`` — the same
    crc32 site-seeding discipline as
    :meth:`repro.resilience.faults.FaultInjector` — so a chaos matrix
    over ``REPRO_CHAOS_SEED`` replays exactly.  Roughly ``rate`` of the
    first ``n_blocks`` compute calls fault, each with a kind drawn
    uniformly from ``kinds``.
    """
    # Bit-compatible with the pre-consolidation SeedSequence([seed,
    # crc32(worker_id)]): recorded fault schedules replay unchanged.
    rng = derive_rng(int(seed), worker_id)
    per_kind: dict[str, list[int]] = {kind: [] for kind in kinds}
    for call_index in range(1, n_blocks + 1):
        if float(rng.random()) < rate:
            kind = kinds[int(rng.integers(len(kinds)))]
            per_kind[kind].append(call_index)
    return tuple(
        NetFaultSpec(kind=kind, at=tuple(indices), delay_s=delay_s)
        for kind, indices in per_kind.items()
        if indices
    )
