"""RPC transports between the coordinator and its workers.

A transport is one worker endpoint viewed from the coordinator: it
carries a single JSON request/response exchange and translates every
way the exchange can fail into the typed ``REPRO_*`` codes the retry
and lease machinery classifies on:

* connection refused / reset / DNS failure → ``REPRO_DIST_UNREACHABLE``
  (the request provably never completed — safe to re-dispatch);
* socket timeout → ``REPRO_SERVE_TIMEOUT`` (the outcome is *unknown* —
  the block may complete late, which is exactly why folds are guarded
  by lease epochs);
* non-JSON or malformed body → ``REPRO_DIST_PROTOCOL``;
* a JSON error payload → re-raised under its own ``code``.

Two implementations: :class:`HttpWorkerTransport` talks real sockets to
a worker process (every call carries an explicit timeout — the ROB002
lint rule holds this file to that), and :class:`InProcessTransport`
wraps a :class:`~repro.distributed.worker.WorkerApp` directly so the
chaos suite can exercise the whole coordinator without port juggling.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Protocol

from repro.exceptions import (
    DistributedProtocolError,
    ReproError,
    ServeTimeoutError,
    WorkerUnavailableError,
    error_code,
)

__all__ = [
    "WorkerTransport",
    "HttpWorkerTransport",
    "InProcessTransport",
    "raise_for_error_payload",
]

#: Fallback timeout when a caller passes ``None`` — a transport never
#: blocks unboundedly (a hung worker must become a lease expiry, not a
#: hung coordinator).
DEFAULT_TIMEOUT_S = 30.0


class WorkerTransport(Protocol):
    """One worker endpoint: a single JSON request/response exchange."""

    endpoint: str

    def request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        *,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Send one message; return the decoded JSON response payload."""
        ...

    def drain_duplicates(self) -> list[dict[str, Any]]:
        """Extra deliveries of already-returned responses (chaos hook).

        Real networks deliver duplicates (a retried proxy, a replayed
        segment); the chaos transport models that here and the plain
        transports always return an empty list.
        """
        ...


def raise_for_error_payload(status: int, payload: dict[str, Any]) -> None:
    """Turn a worker's JSON error payload back into a typed exception."""
    if status < 400:
        return
    code = str(payload.get("code", "REPRO_DIST"))
    message = str(payload.get("error", f"worker returned HTTP {status}"))
    if code == "REPRO_SERVE_TIMEOUT":
        raise ServeTimeoutError(message)

    exc = DistributedProtocolError(message)
    # Preserve the peer's code so retry classification sees the real
    # fault class, not the transport's guess.
    exc.code = code if code.startswith("REPRO_") else "REPRO_DIST_PROTOCOL"
    raise exc


class HttpWorkerTransport:
    """JSON-over-HTTP to one worker process (stdlib ``http.client``).

    A fresh connection per exchange: the serving dialect is HTTP/1.1
    with ``Connection: close``, so there is nothing to pool, and a
    failed worker can never poison a cached socket.
    """

    def __init__(self, host: str, port: int, *, timeout: float | None = None) -> None:
        self.host = host
        self.port = int(port)
        self.endpoint = f"{host}:{port}"
        self._default_timeout = float(timeout) if timeout else DEFAULT_TIMEOUT_S

    def request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        *,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        deadline = timeout if timeout is not None else self._default_timeout
        conn = http.client.HTTPConnection(self.host, self.port, timeout=deadline)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except socket.timeout as exc:
                raise ServeTimeoutError(
                    f"worker {self.endpoint} did not answer {method} {path} "
                    f"within {deadline:.3f}s"
                ) from exc
            except (ConnectionError, OSError, http.client.HTTPException) as exc:
                raise WorkerUnavailableError(
                    f"worker {self.endpoint} unreachable for {method} {path}: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
        finally:
            conn.close()
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            # Text endpoints (/metrics) come back wrapped; a mangled
            # compute payload fails the protocol validators downstream.
            decoded = {"text": raw.decode("utf-8", "replace")}
        if not isinstance(decoded, dict):
            decoded = {"text": raw.decode("utf-8", "replace")}
        raise_for_error_payload(response.status, decoded)
        return decoded

    def drain_duplicates(self) -> list[dict[str, Any]]:
        return []


class InProcessTransport:
    """Call a :class:`WorkerApp` handler directly (tests, chaos suite).

    The handler is the same object the HTTP wrapper serves, so the
    in-process fleet exercises identical message handling — only the
    sockets are skipped.
    """

    def __init__(self, handler: Any, endpoint: str = "in-process") -> None:
        self._handler = handler
        self.endpoint = endpoint

    def request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        *,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        del timeout  # no socket to bound; chaos injects hangs explicitly
        try:
            status, payload = self._handler.handle(method, path, body)
        except ReproError:
            raise
        except Exception as exc:  # a crashed in-process worker
            raise WorkerUnavailableError(
                f"worker {self.endpoint} crashed handling {method} {path}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        if isinstance(payload, str):
            payload = {"text": payload}
        raise_for_error_payload(status, payload)
        return payload

    def drain_duplicates(self) -> list[dict[str, Any]]:
        return []


def classify_transport_fault(exc: BaseException) -> str:
    """The ``REPRO_*`` code a transport failure carries (debug helper)."""
    return error_code(exc) or type(exc).__name__
