"""Worker registration, heartbeat liveness, and fleet lifecycles.

A *fleet* is the coordinator's view of its workers: one
:class:`WorkerHandle` per endpoint carrying the transport, liveness
state, and dispatch counters.  Liveness is heartbeat-based — a worker
is registered by a successful ``/healthz`` exchange and marked dead
after ``miss_threshold`` consecutive failed heartbeats (or a fatal
transport error mid-dispatch).  Death is one-way for a sweep: a worker
that flaps back is ignored until the next sweep re-registers it, so
lease accounting never races a resurrection.

Three fleet flavours:

* :class:`InProcessFleet` — workers are :class:`WorkerApp` objects in
  this process (the chaos suite's substrate: no ports, full protocol);
* :class:`HttpFleet` — pre-existing ``host:port`` endpoints;
* :class:`LocalProcessFleet` — spawns ``python -m
  repro.distributed.worker`` subprocesses on OS-picked ports and owns
  their shutdown.
"""

from __future__ import annotations

import subprocess
import sys
import threading
from typing import Any, Sequence

from repro.distributed.transport import (
    HttpWorkerTransport,
    InProcessTransport,
    WorkerTransport,
)
from repro.exceptions import (
    ReproError,
    ValidationError,
    WorkerUnavailableError,
    error_code,
)

__all__ = ["WorkerHandle", "Fleet", "InProcessFleet", "HttpFleet", "LocalProcessFleet"]

#: Consecutive failed heartbeats before a worker is declared dead.
DEFAULT_MISS_THRESHOLD = 2


class WorkerHandle:
    """One worker as the coordinator sees it: transport + liveness + tallies."""

    def __init__(self, worker_id: str, transport: WorkerTransport) -> None:
        self.worker_id = worker_id
        self.transport = transport
        self.alive = True
        self.registered = False
        self.misses = 0
        self.dispatched = 0
        self.completed = 0
        self.failures = 0

    def record_success(self) -> None:
        self.misses = 0
        self.completed += 1

    def record_miss(self, threshold: int = DEFAULT_MISS_THRESHOLD) -> None:
        """One failed heartbeat/dispatch; past the threshold the worker dies."""
        self.misses += 1
        self.failures += 1
        if self.misses >= threshold:
            self.alive = False

    def mark_dead(self) -> None:
        self.alive = False

    def describe(self) -> dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "endpoint": getattr(self.transport, "endpoint", "?"),
            "alive": self.alive,
            "registered": self.registered,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "failures": self.failures,
        }


class Fleet:
    """A set of worker handles plus the heartbeat that curates it."""

    def __init__(self, handles: Sequence[WorkerHandle]) -> None:
        if not handles:
            raise ValidationError("a fleet needs at least one worker")
        self.handles = list(handles)

    # -- liveness ----------------------------------------------------------

    def live(self) -> list[WorkerHandle]:
        return [h for h in self.handles if h.alive]

    def heartbeat(
        self,
        *,
        timeout: float = 1.0,
        miss_threshold: int = DEFAULT_MISS_THRESHOLD,
    ) -> dict[str, bool]:
        """Ping every live worker's ``/healthz`` once; returns id → up.

        Registration happens here too: the first successful heartbeat
        marks the handle registered (the worker answered with its own
        id, which must match the handle's).
        """
        status: dict[str, bool] = {}
        for handle in self.handles:
            if not handle.alive:
                status[handle.worker_id] = False
                continue
            try:
                payload = handle.transport.request(
                    "GET", "/healthz", timeout=timeout
                )
            except ReproError as exc:
                del exc  # typed fault: a miss, counted below
                handle.record_miss(miss_threshold)
                status[handle.worker_id] = handle.alive
                continue
            handle.misses = 0
            handle.registered = True
            remote_id = payload.get("worker_id")
            if isinstance(remote_id, str) and remote_id:
                handle.worker_id = remote_id
            status[handle.worker_id] = True
        return status

    def describe(self) -> list[dict[str, Any]]:
        return [h.describe() for h in self.handles]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release fleet resources (subclasses own real processes)."""

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class InProcessFleet(Fleet):
    """Workers are handler objects in this process (tests, chaos suite).

    ``handlers`` may be bare :class:`~repro.distributed.worker.WorkerApp`
    objects or pre-wrapped transports (e.g. a
    :class:`~repro.distributed.chaos.ChaosTransport`) — anything with a
    ``request`` method is used as-is.
    """

    def __init__(self, handlers: Sequence[Any]) -> None:
        handles = []
        for index, handler in enumerate(handlers):
            if hasattr(handler, "request"):
                transport: WorkerTransport = handler
                worker_id = getattr(handler, "endpoint", f"inproc-{index}")
            else:
                worker_id = getattr(handler, "worker_id", f"inproc-{index}")
                transport = InProcessTransport(handler, endpoint=worker_id)
            handles.append(WorkerHandle(worker_id, transport))
        super().__init__(handles)


class HttpFleet(Fleet):
    """Pre-existing worker endpoints (``host:port`` strings)."""

    def __init__(
        self, endpoints: Sequence[str], *, timeout: float | None = None
    ) -> None:
        handles = []
        for endpoint in endpoints:
            host, _, port_text = str(endpoint).rpartition(":")
            if not host or not port_text.isdigit():
                raise ValidationError(
                    f"worker endpoint {endpoint!r} is not 'host:port'"
                )
            transport = HttpWorkerTransport(
                host, int(port_text), timeout=timeout
            )
            handles.append(WorkerHandle(endpoint, transport))
        super().__init__(handles)


class LocalProcessFleet(Fleet):
    """Spawn N worker subprocesses on OS-picked ports; own their exit."""

    def __init__(
        self,
        n_workers: int,
        *,
        spawn_timeout: float = 20.0,
        request_timeout: float | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
        self._procs: list[subprocess.Popen[str]] = []
        handles: list[WorkerHandle] = []
        try:
            for index in range(n_workers):
                worker_id = f"local-{index}"
                proc = subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.distributed.worker",
                        "--port",
                        "0",
                        "--worker-id",
                        worker_id,
                    ],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    text=True,
                )
                self._procs.append(proc)
                host, port = self._parse_banner(proc, worker_id, spawn_timeout)
                transport = HttpWorkerTransport(
                    host, port, timeout=request_timeout
                )
                handles.append(WorkerHandle(worker_id, transport))
        except BaseException:
            self._terminate_all()
            raise
        super().__init__(handles)

    @staticmethod
    def _parse_banner(
        proc: "subprocess.Popen[str]", worker_id: str, timeout: float
    ) -> tuple[str, int]:
        """Read ``repro-worker <id> on http://host:port`` from stdout."""
        line_box: list[str] = []

        def read() -> None:
            assert proc.stdout is not None
            line_box.append(proc.stdout.readline())

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(timeout)
        if not line_box or "http://" not in line_box[0]:
            raise WorkerUnavailableError(
                f"worker {worker_id} did not announce an endpoint within "
                f"{timeout:.0f}s (exit code {proc.poll()})"
            )
        address = line_box[0].rsplit("http://", 1)[1].strip()
        host, _, port_text = address.rpartition(":")
        return host, int(port_text)

    def kill_worker(self, index: int) -> None:
        """SIGKILL one worker mid-block (the chaos suite's axe)."""
        proc = self._procs[index]
        proc.kill()
        proc.wait(timeout=10)

    def close(self) -> None:
        for handle, proc in zip(self.handles, self._procs):
            if proc.poll() is not None:
                continue
            try:
                handle.transport.request("POST", "/shutdown", {}, timeout=2.0)
            except ReproError as exc:
                del exc  # already dying; escalate to terminate below
        self._terminate_all()

    def _terminate_all(self) -> None:
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
            if proc.stdout is not None:
                proc.stdout.close()


def classify_fleet_fault(exc: BaseException) -> str:
    """Debug helper mirroring :func:`repro.exceptions.error_code`."""
    return error_code(exc) or type(exc).__name__
