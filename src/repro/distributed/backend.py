"""The ``distributed`` grid backend: a fleet behind the backend registry.

Registered lazily by :func:`repro.core.backends.get_backend` (the same
import-on-demand pattern as the gpusim backends), so selecting
``backend="distributed"`` plugs the fleet coordinator into everything
that already speaks backends: ``select_bandwidth``, the resilient
engine's degrade chain (spur: ``distributed → blocked → numpy``), the
CLI, and the serving layer.

Fleet resolution, most explicit first:

1. ``fleet=`` — a prepared :class:`~repro.distributed.fleet.Fleet`
   (tests and long-lived deployments own its lifecycle);
2. ``workers=<int>`` — spawn that many local worker processes for the
   duration of the call;
3. ``workers=<list>`` / ``workers="host:port,..."`` — connect to
   pre-existing endpoints;
4. ``REPRO_WORKERS`` env var, same two spellings;
5. none of the above — there is no fleet, so the call *losslessly
   degrades* to the in-process blocked sweep and says so in its report
   (never a wrong answer, never a surprise crash).

The last sweep's :class:`~repro.distributed.coordinator.FleetReport`
is kept in a context variable; :func:`select_distributed` attaches it
to ``SelectionResult.diagnostics["fleet"]`` so callers can read the
fault classes the run survived.
"""

from __future__ import annotations

import contextvars
import os
from typing import Any

import numpy as np

from repro.core.backends import register_backend
from repro.core.blockwise import cv_scores_blocked
from repro.core.loocv import cv_scores_dense_grid
from repro.distributed.coordinator import (
    CoordinatorConfig,
    FleetCoordinator,
    FleetReport,
)
from repro.distributed.fleet import Fleet, HttpFleet, LocalProcessFleet
from repro.exceptions import FleetLostError, ValidationError
from repro.kernels import Kernel, get_kernel

__all__ = [
    "select_distributed",
    "last_fleet_report",
    "resolve_fleet",
]

_LAST_REPORT: "contextvars.ContextVar[FleetReport | None]" = (
    contextvars.ContextVar("repro_last_fleet_report", default=None)
)


def last_fleet_report() -> FleetReport | None:
    """The :class:`FleetReport` of the most recent distributed sweep."""
    return _LAST_REPORT.get()


def resolve_fleet(
    workers: Any = None,
) -> tuple[Fleet | None, bool]:
    """Turn a ``workers=`` value (or env) into a fleet; returns (fleet, owned).

    ``owned`` tells the caller to close the fleet after the sweep
    (spawned subprocesses); connected endpoint fleets are cheap handle
    bundles the caller may drop.
    """
    if workers is None:
        workers = os.environ.get("REPRO_WORKERS") or None
    if workers is None:
        return None, False
    if isinstance(workers, Fleet):
        return workers, False
    if isinstance(workers, bool):
        raise ValidationError("workers must be an int, endpoints, or a Fleet")
    if isinstance(workers, int):
        return LocalProcessFleet(workers), True
    if isinstance(workers, str):
        text = workers.strip()
        if text.isdigit():
            return LocalProcessFleet(int(text)), True
        workers = [part for part in text.split(",") if part.strip()]
    if isinstance(workers, (list, tuple)):
        return HttpFleet([str(w).strip() for w in workers]), True
    raise ValidationError(
        f"cannot build a fleet from workers={workers!r}; pass an int, "
        "a list of host:port endpoints, or a Fleet"
    )


def _distributed_backend(
    x: np.ndarray,
    y: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str | Kernel = "epanechnikov",
    *,
    workers: Any = None,
    fleet: Fleet | None = None,
    coordinator_config: CoordinatorConfig | None = None,
    memory_budget: int | float | str | None = None,
    block_rows: int | None = None,
    dtype: str = "float64",
    **_: object,
) -> np.ndarray:
    kern = get_kernel(kernel)
    if not kern.supports_fast_grid:
        # Dense kernels have no row-contribution form to distribute;
        # evaluate locally like every other backend (paper footnote 1).
        return cv_scores_dense_grid(x, y, bandwidths, kernel)
    active, owned = (fleet, False) if fleet is not None else resolve_fleet(workers)
    if active is None:
        # No fleet configured: lossless degradation with an explicit
        # report, exactly as if the fleet were unreachable.
        report = FleetReport(fleet_lost=True)
        report.record_fault(
            "fleet",
            FleetLostError(
                "no workers configured (workers=None and REPRO_WORKERS "
                "unset); computing locally via the blocked sweep"
            ),
        )
        _LAST_REPORT.set(report)
        return cv_scores_blocked(
            x, y, bandwidths, kern.name,
            memory_budget=memory_budget, block_rows=block_rows, dtype=dtype,
        )
    coordinator = FleetCoordinator(active, coordinator_config)
    try:
        scores = coordinator.cv_scores(
            x, y, bandwidths, kern.name,
            memory_budget=memory_budget, block_rows=block_rows, dtype=dtype,
        )
    finally:
        _LAST_REPORT.set(coordinator.report)
        if owned:
            active.close()
    return scores


def select_distributed(
    x: np.ndarray,
    y: np.ndarray,
    *,
    workers: Any = None,
    fleet: Fleet | None = None,
    coordinator_config: CoordinatorConfig | None = None,
    **kwargs: Any,
) -> Any:
    """``select_bandwidth(backend="distributed")`` with the fleet report.

    The returned :class:`~repro.core.result.SelectionResult` carries
    ``diagnostics["fleet"]`` — block accounting, per-worker tallies,
    and the distinct ``REPRO_*`` fault classes the sweep survived.
    """
    from repro.core.api import select_bandwidth

    options: dict[str, Any] = dict(kwargs)
    if fleet is not None:
        options["fleet"] = fleet
    if workers is not None:
        options["workers"] = workers
    if coordinator_config is not None:
        options["coordinator_config"] = coordinator_config
    result = select_bandwidth(x, y, backend="distributed", **options)
    report = last_fleet_report()
    if report is not None:
        result.diagnostics["fleet"] = report.to_dict()
    return result


register_backend("distributed", _distributed_backend, overwrite=True)
