"""Wire messages for the coordinator/worker fleet (JSON, checksummed).

The fleet speaks the serving stack's JSON-over-HTTP dialect: one JSON
object per request/response, ``Connection: close``, typed ``REPRO_*``
error payloads.  This module owns the message *shapes* so the
coordinator, the worker, and the chaos harness agree on them, and two
properties the distributed fold depends on:

**Bit-exact floats over JSON.**  ``json.dumps`` serialises a Python
float via ``repr``, the shortest string that round-trips to the same
IEEE-754 double, and ``json.loads`` parses back to the nearest double —
so a finite float64 survives the wire bit-for-bit.  That is what lets
the coordinator fold remote ``fastgrid_row_contributions`` rows through
:func:`~repro.utils.numeric.fold_rows` and still match the local
``blocked`` backend exactly.

**Checksummed payloads.**  Every compute response carries a SHA-256
over the row bytes *and* the block bounds, computed by the worker over
its own output.  A flipped bit on the wire (or in a worker's memory)
fails verification on the coordinator and the block is recomputed —
corruption degrades to "retry", never to a wrong CV sum.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from repro.exceptions import DistributedProtocolError, PayloadChecksumError

__all__ = [
    "PROTOCOL_VERSION",
    "payload_checksum",
    "encode_compute_request",
    "decode_compute_request",
    "encode_compute_response",
    "decode_compute_rows",
    "encode_dataset",
    "decode_dataset",
]

#: Bumped on any incompatible message change; both sides verify it so
#: version skew surfaces as a typed protocol error, not a silent drift.
PROTOCOL_VERSION = 1


def payload_checksum(rows: np.ndarray, start: int, stop: int) -> str:
    """SHA-256 over the float64 row bytes, bound to the block bounds.

    Binding ``(start, stop)`` into the digest means a response carrying
    the *right* rows for the *wrong* block cannot pass verification.
    """
    arr = np.ascontiguousarray(np.asarray(rows, dtype=np.float64))
    digest = hashlib.sha256()
    digest.update(f"rows|v{PROTOCOL_VERSION}|{start}|{stop}|{arr.shape}|".encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()


def _require(body: dict[str, Any], key: str, kind: type) -> Any:
    value = body.get(key)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise DistributedProtocolError(
            f"message field {key!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def encode_dataset(
    dataset_id: str,
    x: np.ndarray,
    y: np.ndarray,
    grid: np.ndarray,
    kernel: str,
    dtype: str,
) -> dict[str, Any]:
    """The one-time staging message: data, grid, kernel, arithmetic."""
    return {
        "version": PROTOCOL_VERSION,
        "dataset_id": dataset_id,
        "x": np.asarray(x, dtype=np.float64).tolist(),
        "y": np.asarray(y, dtype=np.float64).tolist(),
        "grid": np.asarray(grid, dtype=np.float64).tolist(),
        "kernel": kernel,
        "dtype": dtype,
    }


def decode_dataset(body: dict[str, Any]) -> dict[str, Any]:
    """Validate a staging message; arrays come back as float64."""
    _check_version(body)
    dataset_id = _require(body, "dataset_id", str)
    kernel = _require(body, "kernel", str)
    dtype = str(body.get("dtype", "float64"))
    try:
        x = np.asarray(_require(body, "x", list), dtype=np.float64)
        y = np.asarray(_require(body, "y", list), dtype=np.float64)
        grid = np.asarray(_require(body, "grid", list), dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise DistributedProtocolError(
            f"dataset arrays are not numeric: {exc}"
        ) from exc
    if x.ndim != 1 or x.shape != y.shape or grid.ndim != 1 or not grid.size:
        raise DistributedProtocolError(
            f"dataset shapes malformed: x{x.shape}, y{y.shape}, grid{grid.shape}"
        )
    return {
        "dataset_id": dataset_id,
        "x": x,
        "y": y,
        "grid": grid,
        "kernel": kernel,
        "dtype": dtype,
    }


def encode_compute_request(
    dataset_id: str, block_id: int, epoch: int, start: int, stop: int
) -> dict[str, Any]:
    """One block lease: compute rows ``[start, stop)`` under ``epoch``."""
    return {
        "version": PROTOCOL_VERSION,
        "dataset_id": dataset_id,
        "block_id": int(block_id),
        "epoch": int(epoch),
        "start": int(start),
        "stop": int(stop),
    }


def decode_compute_request(body: dict[str, Any]) -> dict[str, Any]:
    """Validate a compute request on the worker side."""
    _check_version(body)
    out = {
        "dataset_id": _require(body, "dataset_id", str),
        "block_id": _require(body, "block_id", int),
        "epoch": _require(body, "epoch", int),
        "start": _require(body, "start", int),
        "stop": _require(body, "stop", int),
    }
    if not 0 <= out["start"] < out["stop"]:
        raise DistributedProtocolError(
            f"block bounds malformed: [{out['start']}, {out['stop']})"
        )
    return out


def encode_compute_response(
    request: dict[str, Any], rows: np.ndarray, worker_id: str
) -> dict[str, Any]:
    """The worker's partial result, checksummed over its own output."""
    arr = np.asarray(rows, dtype=np.float64)
    return {
        "version": PROTOCOL_VERSION,
        "block_id": int(request["block_id"]),
        "epoch": int(request["epoch"]),
        "start": int(request["start"]),
        "stop": int(request["stop"]),
        "rows": arr.tolist(),
        "checksum": payload_checksum(arr, request["start"], request["stop"]),
        "worker_id": worker_id,
    }


def decode_compute_rows(body: dict[str, Any], k: int) -> np.ndarray:
    """Verify shape + checksum of a compute response; return float64 rows.

    Raises :class:`PayloadChecksumError` on a digest mismatch and
    :class:`DistributedProtocolError` on structural damage (wrong row
    count, non-numeric entries, missing fields).
    """
    _check_version(body)
    start = _require(body, "start", int)
    stop = _require(body, "stop", int)
    checksum = _require(body, "checksum", str)
    try:
        rows = np.asarray(_require(body, "rows", list), dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise DistributedProtocolError(
            f"compute response rows are not numeric: {exc}"
        ) from exc
    if rows.ndim != 2 or rows.shape != (stop - start, k):
        raise DistributedProtocolError(
            f"compute response rows have shape {rows.shape}, "
            f"expected {(stop - start, k)}"
        )
    actual = payload_checksum(rows, start, stop)
    if actual != checksum:
        raise PayloadChecksumError(
            f"block {body.get('block_id')} rows[{start}:{stop}) checksum "
            f"mismatch: got {actual[:12]}…, response claims {checksum[:12]}…"
        )
    return rows


def _check_version(body: dict[str, Any]) -> None:
    version = body.get("version", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise DistributedProtocolError(
            f"protocol version skew: peer speaks v{version}, "
            f"this process speaks v{PROTOCOL_VERSION}"
        )
