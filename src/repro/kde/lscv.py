"""Least-squares cross-validation for kernel density estimation.

Paper §II: "the methods developed here for least-squares cross-validation
can be applied to many similar problems in nonparametric estimation,
including optimal bandwidth selection for kernel density estimation".
This module is that application.

The LSCV objective (Silverman 1986, eq. 3.35; exact pairwise form):

    LSCV(h) = R(K)/(n·h)
            + (1/(n²·h)) · Σ_{i≠j} K̄((X_i−X_j)/h)
            − (2/(n·(n−1)·h)) · Σ_{i≠j} K((X_i−X_j)/h)

where ``K̄`` is the kernel self-convolution.  Minimising LSCV over ``h``
estimates the minimiser of integrated squared error.

Both double sums are sums of compact polynomial functions of ``d/h`` when
the kernel is Epanechnikov or Uniform — so exactly the paper's sorted
window-sum trick applies, with two windows per grid bandwidth (``d <= 2h``
for the convolution term, ``d <= h`` for the kernel term).
:func:`lscv_scores_fastgrid` evaluates the whole grid that way; the dense
:func:`lscv_scores_grid` covers every kernel and is the test oracle.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.kernels import Kernel, get_kernel
from repro.kde.convolution import ConvolutionKernel, self_convolution
from repro.utils.chunking import chunk_slices, suggest_chunk_rows
from repro.utils.validation import as_float_array, ensure_bandwidths

__all__ = [
    "lscv_score",
    "lscv_scores_grid",
    "lscv_scores_fastgrid",
    "supports_fast_lscv",
]


def supports_fast_lscv(kernel: str | Kernel) -> bool:
    """Whether the sorted fast-grid LSCV applies to ``kernel``.

    Requires *both* the kernel and its self-convolution to be compact
    polynomials (Epanechnikov, Uniform).
    """
    kern = get_kernel(kernel)
    if not kern.supports_fast_grid:
        return False
    try:
        conv = self_convolution(kern)
    except NotImplementedError:
        return False
    return conv.supports_fast_grid


def _pair_sums_dense(
    x: np.ndarray,
    h: float,
    kern: Kernel,
    conv: ConvolutionKernel,
    chunk_rows: int | None,
) -> tuple[float, float]:
    """``(Σ_{i≠j} K̄(δ), Σ_{i≠j} K(δ))`` for one bandwidth, chunked."""
    n = x.shape[0]
    rows = chunk_rows or suggest_chunk_rows(n, working_arrays=3)
    conv_sum = 0.0
    kern_sum = 0.0
    base = np.arange(n, dtype=np.int64)
    for sl in chunk_slices(n, rows):
        delta = (x[sl, None] - x[None, :]) / h
        idx = base[sl]
        local = base[: idx.shape[0]]
        cw = conv(delta)
        kw = kern(delta)
        cw[local, idx] = 0.0
        kw[local, idx] = 0.0
        conv_sum += float(cw.sum())
        kern_sum += float(kw.sum())
    return conv_sum, kern_sum


def lscv_score(
    x: np.ndarray,
    h: float,
    kernel: str | Kernel = "epanechnikov",
    *,
    chunk_rows: int | None = None,
) -> float:
    """LSCV objective at a single bandwidth (dense evaluation)."""
    x = as_float_array(x, name="x")
    if x.size < 2:
        raise ValidationError("LSCV needs at least 2 observations")
    if h <= 0.0:
        raise ValidationError(f"bandwidth must be positive, got {h}")
    kern = get_kernel(kernel)
    conv = self_convolution(kern)
    n = x.shape[0]
    conv_sum, kern_sum = _pair_sums_dense(x, h, kern, conv, chunk_rows)
    return (
        kern.roughness / (n * h)
        + conv_sum / (n * n * h)
        - 2.0 * kern_sum / (n * (n - 1) * h)
    )


def lscv_scores_grid(
    x: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str | Kernel = "epanechnikov",
    *,
    chunk_rows: int | None = None,
) -> np.ndarray:
    """Dense per-bandwidth LSCV over a grid — O(k·n²), any kernel."""
    grid = ensure_bandwidths(bandwidths)
    return np.array(
        [lscv_score(x, float(h), kernel, chunk_rows=chunk_rows) for h in grid]
    )


def lscv_scores_fastgrid(
    x: np.ndarray,
    bandwidths: np.ndarray,
    kernel: str | Kernel = "epanechnikov",
    *,
    chunk_rows: int | None = None,
) -> np.ndarray:
    """Fast sorted-window LSCV over a whole grid.

    The KDE counterpart of :func:`repro.core.fastgrid.cv_scores_fastgrid`:
    pairwise distances are binned once against the bandwidth grid (scaled
    by each term's window radius) and per-power weighted histograms are
    cumulated along the grid axis.  O(n² log k + k) total, versus
    O(k·n²) for the dense loop.
    """
    x = as_float_array(x, name="x")
    if x.size < 2:
        raise ValidationError("LSCV needs at least 2 observations")
    grid = ensure_bandwidths(bandwidths)
    kern = get_kernel(kernel)
    conv = self_convolution(kern)
    if not (kern.supports_fast_grid and conv.supports_fast_grid):
        raise ValidationError(
            f"kernel {kern.name!r} does not support fast-grid LSCV; "
            "use lscv_scores_grid instead"
        )
    n = x.shape[0]
    k = grid.shape[0]
    rows = chunk_rows or suggest_chunk_rows(n, working_arrays=6)

    def window_sums(terms, radius: float) -> np.ndarray:
        """Σ_{pairs: d <= radius·h_j} Σ_p c_p·d^p/h^p, for every j."""
        per_power: dict[int, np.ndarray] = {
            t.power: np.zeros(k, dtype=np.float64) for t in terms
        }
        for sl in chunk_slices(n, rows):
            dist = np.abs(x[sl, None] - x[None, :])
            first_j = np.minimum(
                np.searchsorted(grid * radius, dist.ravel(), side="left"), k
            )
            for t in terms:
                w = None if t.power == 0 else (dist**t.power).ravel()
                hist = np.bincount(first_j, weights=w, minlength=k + 1)[:k]
                per_power[t.power] += hist
        total = np.zeros(k, dtype=np.float64)
        for t in terms:
            sums = np.cumsum(per_power[t.power])
            # Self pairs (d = 0) sit in the first bin at every bandwidth and
            # contribute only to power 0; remove all n of them.
            if t.power == 0:
                sums = sums - n
            total += t.coefficient * sums / (grid**t.power if t.power else 1.0)
        return total

    conv_sums = window_sums(conv.poly_terms, conv.support_radius)
    kern_sums = window_sums(kern.poly_terms, kern.support_radius)
    return (
        kern.roughness / (n * grid)
        + conv_sums / (n * n * grid)
        - 2.0 * kern_sums / (n * (n - 1) * grid)
    )
