"""Kernel density estimation.

    f̂(x) = (1/(n·h)) · Σ_l K((x − X_l)/h)

with the bandwidth fixed, rule-of-thumb, or LSCV-grid selected (the
paper's fast-grid machinery applied to KDE — see :mod:`repro.kde.lscv`).
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.exceptions import SelectionError, ValidationError
from repro.kernels import Kernel, get_kernel
from repro.core.grid import BandwidthGrid
from repro.core.result import SelectionResult
from repro.kde.lscv import lscv_scores_fastgrid, lscv_scores_grid, supports_fast_lscv
from repro.kde.rot import scott_bandwidth, silverman_bandwidth
from repro.utils.chunking import chunk_slices, suggest_chunk_rows
from repro.utils.validation import as_float_array

__all__ = ["KernelDensity", "kde_evaluate", "select_kde_bandwidth"]


def kde_evaluate(
    x: np.ndarray,
    at: np.ndarray,
    h: float,
    kernel: str | Kernel = "epanechnikov",
    *,
    chunk_rows: int | None = None,
) -> np.ndarray:
    """Evaluate the KDE of sample ``x`` at points ``at``."""
    x = as_float_array(x, name="x")
    at = as_float_array(at, name="at")
    kern = get_kernel(kernel)
    if h <= 0.0:
        raise ValidationError(f"bandwidth must be positive, got {h}")
    n = x.shape[0]
    out = np.empty(at.shape[0], dtype=np.float64)
    rows = chunk_rows or suggest_chunk_rows(n, working_arrays=2)
    for sl in chunk_slices(at.shape[0], rows):
        w = kern((at[sl, None] - x[None, :]) / h)
        out[sl] = w.sum(axis=1) / (n * h)
    return out


def select_kde_bandwidth(
    x: np.ndarray,
    *,
    method: str = "lscv-grid",
    kernel: str | Kernel = "epanechnikov",
    n_bandwidths: int = 50,
    grid: BandwidthGrid | None = None,
) -> SelectionResult:
    """Select a KDE bandwidth.

    ``method``:

    * ``"lscv-grid"`` — least-squares CV over a grid, using the fast
      sorted sweep when the kernel supports it (Epanechnikov, Uniform).
    * ``"silverman"`` / ``"scott"`` — normal-reference rules of thumb.
    """
    x = as_float_array(x, name="x")
    start = time.perf_counter()
    kern = get_kernel(kernel)

    if method in ("silverman", "scott"):
        h = (
            silverman_bandwidth(x, kern)
            if method == "silverman"
            else scott_bandwidth(x, kern)
        )
        return SelectionResult(
            bandwidth=h,
            score=float(lscv_scores_grid(x, np.array([h]), kern)[0]),
            method=f"kde-{method}",
            backend="numpy",
            kernel=kern.name,
            n_observations=int(x.shape[0]),
            bandwidths=np.array([h]),
            scores=np.empty(0, dtype=np.float64),
            n_evaluations=1,
            wall_seconds=time.perf_counter() - start,
        )

    if method != "lscv-grid":
        raise ValidationError(
            f"unknown KDE method {method!r}; use 'lscv-grid', 'silverman' or 'scott'"
        )

    bw_grid = grid or BandwidthGrid.for_sample(x, n_bandwidths)
    if supports_fast_lscv(kern):
        scores = lscv_scores_fastgrid(x, bw_grid.values, kern)
        backend = "fastgrid"
    else:
        scores = lscv_scores_grid(x, bw_grid.values, kern)
        backend = "dense"
    j = int(np.argmin(scores))
    return SelectionResult(
        bandwidth=float(bw_grid.values[j]),
        score=float(scores[j]),
        method="kde-lscv-grid",
        backend=backend,
        kernel=kern.name,
        n_observations=int(x.shape[0]),
        bandwidths=bw_grid.values.copy(),
        scores=np.asarray(scores),
        n_evaluations=len(bw_grid),
        wall_seconds=time.perf_counter() - start,
    )


class KernelDensity:
    """KDE with pluggable bandwidth selection (fit/evaluate interface).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.kde import KernelDensity
    >>> x = np.random.default_rng(0).normal(size=400)
    >>> kde = KernelDensity().fit(x)
    >>> density = kde.evaluate(np.linspace(-3, 3, 61))
    >>> bool(np.all(density >= 0))
    True
    """

    def __init__(
        self,
        kernel: str | Kernel = "epanechnikov",
        *,
        bandwidth: float | None = None,
        method: str = "lscv-grid",
        **select_options: Any,
    ):
        self.kernel = get_kernel(kernel)
        if bandwidth is not None and bandwidth <= 0.0:
            raise ValidationError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth: float | None = bandwidth
        self.method = method
        self.select_options = select_options
        self.selection_: SelectionResult | None = None
        self.x_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "KernelDensity":
        """Store the sample; select the bandwidth if not fixed."""
        self.x_ = as_float_array(x, name="x")
        if self.bandwidth is None:
            self.selection_ = select_kde_bandwidth(
                self.x_,
                method=self.method,
                kernel=self.kernel,
                **self.select_options,
            )
            self.bandwidth = self.selection_.bandwidth
        return self

    def _check_fitted(self) -> tuple[np.ndarray, float]:
        if self.x_ is None or self.bandwidth is None:
            raise SelectionError("density is not fitted; call fit(x) first")
        return self.x_, self.bandwidth

    def evaluate(self, at: np.ndarray) -> np.ndarray:
        """Density estimates at ``at``."""
        x, h = self._check_fitted()
        return kde_evaluate(x, at, h, self.kernel)

    def integrated_squared_error(
        self, truth, *, grid_points: int = 512, padding: float = 3.0
    ) -> float:
        """ISE against a known pdf (simulation-study metric).

        ``truth`` is a vectorised pdf callable; integration by trapezoid
        over the sample range padded by ``padding`` bandwidths.
        """
        x, h = self._check_fitted()
        lo = float(x.min()) - padding * h
        hi = float(x.max()) + padding * h
        pts = np.linspace(lo, hi, grid_points)
        diff = self.evaluate(pts) - np.asarray(truth(pts), dtype=float)
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(diff * diff, pts))
