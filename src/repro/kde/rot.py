"""Rules of thumb for KDE bandwidths.

The paper's introduction cites Silverman (1986) and Sheather & Jones
(1991) as the "rule of thumb procedures" economists fall back on instead
of the optimal bandwidth.  We implement the two normal-reference rules
(Silverman's and Scott's); they are exact under Gaussian data and
oversmooth multimodal densities — which the bimodal example demonstrates
against the LSCV selection.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SelectionError, ValidationError
from repro.kernels import GaussianKernel, Kernel, get_kernel
from repro.utils.validation import as_float_array

__all__ = ["silverman_bandwidth", "scott_bandwidth"]


def _robust_spread(x: np.ndarray) -> float:
    sd = float(np.std(x, ddof=1))
    q75, q25 = np.percentile(x, [75.0, 25.0])
    iqr = float(q75 - q25) / 1.349
    candidates = [s for s in (sd, iqr) if s > 0.0]
    if not candidates:
        raise SelectionError("sample has zero spread; no rule-of-thumb bandwidth")
    return min(candidates)


def _kernel_rescale(kern: Kernel) -> float:
    """Canonical-bandwidth ratio from the Gaussian to ``kern``."""
    return kern.canonical_bandwidth / GaussianKernel().canonical_bandwidth


def silverman_bandwidth(x: np.ndarray, kernel: str | Kernel = "gaussian") -> float:
    """Silverman's rule: ``h = 0.9·min(σ̂, IQR/1.349)·n^{-1/5}``.

    Stated for the Gaussian kernel; rescaled to other kernels through
    canonical bandwidths.
    """
    x = as_float_array(x, name="x")
    if x.size < 2:
        raise ValidationError("Silverman's rule needs a 1-D sample of size >= 2")
    kern = get_kernel(kernel)
    return 0.9 * _robust_spread(x) * x.size ** (-0.2) * _kernel_rescale(kern)


def scott_bandwidth(x: np.ndarray, kernel: str | Kernel = "gaussian") -> float:
    """Scott's rule: ``h = 1.06·σ̂·n^{-1/5}`` (normal reference)."""
    x = as_float_array(x, name="x")
    if x.size < 2:
        raise ValidationError("Scott's rule needs a 1-D sample of size >= 2")
    sd = float(np.std(x, ddof=1))
    if sd <= 0.0:
        raise SelectionError("sample has zero standard deviation")
    kern = get_kernel(kernel)
    return 1.06 * sd * x.size ** (-0.2) * _kernel_rescale(kern)
