"""Pointwise confidence intervals for kernel density estimates.

The second of the paper's §II extensions: "the estimation of leave-one-
out cross-validated confidence intervals for kernel density estimates
and kernel regressions".

The KDE at a point is a sample mean,

    f̂(x) = (1/n) Σ_i Z_i(x),   Z_i(x) = K((x − X_i)/h) / h,

so its pointwise standard error is the sample standard deviation of the
``Z_i`` over √n.  The *cross-validated* flavour centres each ``Z_i``
against the leave-one-out estimate ``f̂₋ᵢ(x)`` rather than against ``f̂``
itself; for the mean-based estimator these differ only by the exact
finite-sample factor ``n/(n−1)`` applied here, which is what removes the
own-observation optimism at small n.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import ValidationError
from repro.kernels import Kernel, get_kernel
from repro.utils.chunking import chunk_slices, suggest_chunk_rows
from repro.utils.validation import as_float_array, check_probability

__all__ = ["DensityBand", "kde_confidence_band"]


@dataclass(frozen=True)
class DensityBand:
    """A pointwise confidence band for a density curve.

    The lower bound is clipped at 0 — a density cannot be negative, and
    the normal approximation happily dips below zero in the tails.
    """

    at: np.ndarray
    estimate: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    level: float
    bandwidth: float

    @property
    def width(self) -> np.ndarray:
        """Band width at each evaluation point."""
        return self.upper - self.lower

    def coverage_of(self, truth: np.ndarray) -> float:
        """Fraction of points whose band contains ``truth``."""
        truth = np.asarray(truth, dtype=float)
        if truth.shape != self.estimate.shape:
            raise ValidationError(
                f"truth shape {truth.shape} != band shape {self.estimate.shape}"
            )
        hit = (truth >= self.lower) & (truth <= self.upper)
        return float(hit.mean())


def kde_confidence_band(
    x: np.ndarray,
    at: np.ndarray,
    h: float,
    kernel: str | Kernel = "epanechnikov",
    *,
    level: float = 0.95,
    chunk_rows: int | None = None,
) -> DensityBand:
    """Pointwise CV'd confidence band for the KDE at points ``at``."""
    x = as_float_array(x, name="x")
    at = as_float_array(at, name="at")
    kern = get_kernel(kernel)
    if h <= 0.0:
        raise ValidationError(f"bandwidth must be positive, got {h}")
    if x.size < 2:
        raise ValidationError("confidence band needs at least 2 observations")
    level = check_probability(level, name="level")
    z = float(stats.norm.ppf(0.5 + level / 2.0))

    n = x.shape[0]
    m = at.shape[0]
    est = np.empty(m, dtype=np.float64)
    se = np.empty(m, dtype=np.float64)
    rows = chunk_rows or suggest_chunk_rows(n, working_arrays=3)
    for sl in chunk_slices(m, rows):
        zmat = kern((at[sl, None] - x[None, :]) / h) / h
        mean = zmat.mean(axis=1)
        # Leave-one-out (n-1 denominator) sample variance of the Z_i.
        var = np.square(zmat - mean[:, None]).sum(axis=1) / (n - 1)
        est[sl] = mean
        se[sl] = np.sqrt(var / n)

    return DensityBand(
        at=at,
        estimate=est,
        lower=np.maximum(est - z * se, 0.0),
        upper=est + z * se,
        level=level,
        bandwidth=float(h),
    )
