"""Kernel density estimation with LSCV bandwidth selection.

The KDE application of the paper's fast-grid machinery (§II's
"straightforward extension").
"""

from repro.kde.confidence import DensityBand, kde_confidence_band
from repro.kde.convolution import (
    CONVOLUTION_REGISTRY,
    ConvolutionKernel,
    self_convolution,
)
from repro.kde.density import KernelDensity, kde_evaluate, select_kde_bandwidth
from repro.kde.lscv import (
    lscv_score,
    lscv_scores_fastgrid,
    lscv_scores_grid,
    supports_fast_lscv,
)
from repro.kde.rot import scott_bandwidth, silverman_bandwidth

__all__ = [
    "CONVOLUTION_REGISTRY",
    "ConvolutionKernel",
    "DensityBand",
    "KernelDensity",
    "kde_confidence_band",
    "kde_evaluate",
    "lscv_score",
    "lscv_scores_fastgrid",
    "lscv_scores_grid",
    "scott_bandwidth",
    "select_kde_bandwidth",
    "self_convolution",
    "silverman_bandwidth",
    "supports_fast_lscv",
]
