"""Kernel self-convolutions ``K̄(t) = ∫ K(v)·K(t−v) dv``.

The least-squares CV objective for KDE needs ``∫ f̂²``, whose exact
pairwise form runs through the self-convolution kernel.  For the paper's
fast-grid trick to extend to KDE, ``K̄`` must itself be a compact
polynomial — true for the Epanechnikov and Uniform kernels (closed forms
below), false for e.g. the Triangular (piecewise cubic) and Gaussian
(infinite support), which take the numeric/dense path.

Closed forms (support ``|t| <= 2``):

* Epanechnikov: ``K̄(t) = (3/160)·(32 − 40t² + 20|t|³ − |t|⁵)``
* Uniform:      ``K̄(t) = (2 − |t|)/4``

Both satisfy ``K̄(0) = R(K)`` and ``K̄(±2) = 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.kernels import Kernel, PolyTerm, get_kernel

__all__ = ["ConvolutionKernel", "self_convolution", "CONVOLUTION_REGISTRY"]


@dataclass(frozen=True)
class ConvolutionKernel:
    """A kernel self-convolution: callable plus fast-grid metadata."""

    name: str
    support_radius: float
    evaluate: Callable[[np.ndarray], np.ndarray]
    poly_terms: tuple[PolyTerm, ...] | None = None

    @property
    def supports_fast_grid(self) -> bool:
        """Polynomial + compact → usable by the sorted LSCV grid sweep."""
        return math.isfinite(self.support_radius) and self.poly_terms is not None

    def __call__(self, t: np.ndarray | float) -> np.ndarray:
        arr = np.asarray(t, dtype=float)
        if math.isinf(self.support_radius):
            return self.evaluate(arr)
        out = np.zeros_like(arr)
        mask = np.abs(arr) <= self.support_radius
        if np.any(mask):
            out[mask] = self.evaluate(arr[mask])
        return out


def _epanechnikov_conv(t: np.ndarray) -> np.ndarray:
    a = np.abs(t)
    return (3.0 / 160.0) * (32.0 - 40.0 * a**2 + 20.0 * a**3 - a**5)


def _uniform_conv(t: np.ndarray) -> np.ndarray:
    return (2.0 - np.abs(t)) / 4.0


def _gaussian_conv(t: np.ndarray) -> np.ndarray:
    # N(0,1) * N(0,1) = N(0,2): density (1/(2√π))·exp(−t²/4).
    return np.exp(-0.25 * t * t) / (2.0 * math.sqrt(math.pi))


CONVOLUTION_REGISTRY: Dict[str, ConvolutionKernel] = {
    "epanechnikov": ConvolutionKernel(
        name="epanechnikov",
        support_radius=2.0,
        evaluate=_epanechnikov_conv,
        poly_terms=(
            PolyTerm(3.0 / 160.0 * 32.0, 0),
            PolyTerm(3.0 / 160.0 * -40.0, 2),
            PolyTerm(3.0 / 160.0 * 20.0, 3),
            PolyTerm(3.0 / 160.0 * -1.0, 5),
        ),
    ),
    "uniform": ConvolutionKernel(
        name="uniform",
        support_radius=2.0,
        evaluate=_uniform_conv,
        poly_terms=(PolyTerm(0.5, 0), PolyTerm(-0.25, 1)),
    ),
    "gaussian": ConvolutionKernel(
        name="gaussian",
        support_radius=math.inf,
        evaluate=_gaussian_conv,
        poly_terms=None,
    ),
}


def self_convolution(kernel: str | Kernel, *, grid_points: int = 2049) -> ConvolutionKernel:
    """Self-convolution of ``kernel`` — closed form if known, else numeric.

    The numeric fallback tabulates ``∫ K(v)K(t−v) dv`` by trapezoid on a
    dense grid over the (finite) support and interpolates; it is built
    once per call, so callers should hold on to the result.
    """
    kern = get_kernel(kernel)
    known = CONVOLUTION_REGISTRY.get(kern.name)
    if known is not None:
        return known
    if not kern.has_compact_support:
        raise NotImplementedError(
            f"no convolution rule for infinite-support kernel {kern.name!r}"
        )
    radius = kern.support_radius
    v = np.linspace(-radius, radius, grid_points)
    kv = kern(v)
    ts = np.linspace(-2.0 * radius, 2.0 * radius, grid_points)
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    table = np.array([trapezoid(kv * kern(t - v), v) for t in ts])

    def evaluate(t: np.ndarray) -> np.ndarray:
        return np.interp(np.abs(np.asarray(t, dtype=float)), ts[ts >= 0], table[ts >= 0])

    return ConvolutionKernel(
        name=kern.name,
        support_radius=2.0 * radius,
        evaluate=evaluate,
        poly_terms=None,
    )
