"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The GPU-simulator errors mirror the
CUDA error conditions that the paper's program can hit on real hardware
(out of device memory, exceeding the constant-memory working set, invalid
launch configurations).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "DataShapeError",
    "BandwidthGridError",
    "DegenerateDataError",
    "SelectionError",
    "BackendError",
    "GpuSimError",
    "DeviceMemoryError",
    "ConstantMemoryError",
    "SharedMemoryError",
    "LaunchConfigurationError",
    "DeviceStateError",
    "KernelExecutionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad type, shape, or value)."""


class DataShapeError(ValidationError):
    """Input arrays have incompatible or unusable shapes."""


class BandwidthGridError(ValidationError):
    """A bandwidth grid is malformed (non-positive, unsorted, empty...)."""


class DegenerateDataError(ReproError):
    """The data admit no meaningful bandwidth choice.

    Raised e.g. when every ``X_i`` is identical (zero domain) so no
    compact-support kernel can ever have a non-empty leave-one-out window.
    """


class SelectionError(ReproError):
    """Bandwidth selection failed to produce a usable optimum."""


class BackendError(ReproError):
    """A computation backend is unknown or unavailable."""


class GpuSimError(ReproError):
    """Base class for GPU-simulator errors (mirrors ``cudaError_t``)."""


class DeviceMemoryError(GpuSimError, MemoryError):
    """Global-memory allocation failed (``cudaErrorMemoryAllocation``).

    The paper hits exactly this above n = 20,000: the two n-by-n float32
    matrices no longer fit in the Tesla's 4 GB of device memory.
    """


class ConstantMemoryError(GpuSimError):
    """Constant-memory working set exceeded.

    The paper bounds the number of bandwidths at 2,048 because the typical
    constant-memory *cache* working set is 8 KB (2,048 float32 values).
    """


class SharedMemoryError(GpuSimError):
    """A block requested more shared memory than the SM provides."""


class LaunchConfigurationError(GpuSimError):
    """Invalid kernel launch configuration (``cudaErrorInvalidConfiguration``)."""


class DeviceStateError(GpuSimError):
    """Operation attempted on a freed buffer or reset device."""


class KernelExecutionError(GpuSimError):
    """A device kernel raised during simulated execution."""
