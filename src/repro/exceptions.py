"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The GPU-simulator errors mirror the
CUDA error conditions that the paper's program can hit on real hardware
(out of device memory, exceeding the constant-memory working set, invalid
launch configurations).

Every class carries a stable, machine-readable :attr:`~ReproError.code`
(``REPRO_*``).  The resilience layer's retry/degrade decisions and
structured logs match on these codes rather than on class identity, so
exception classes can be renamed or re-parented across refactors without
silently changing fallback behaviour.  The code is prefixed to
``str(exc)`` — ``[REPRO_DEVICE_OOM] device tesla: cannot allocate ...`` —
so plain log lines stay greppable by code.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "DataShapeError",
    "BandwidthGridError",
    "DegenerateDataError",
    "SelectionError",
    "BackendError",
    "CompiledUnavailableError",
    "GpuSimError",
    "DeviceMemoryError",
    "ConstantMemoryError",
    "SharedMemoryError",
    "LaunchConfigurationError",
    "DeviceStateError",
    "KernelExecutionError",
    "MemoryBudgetError",
    "PoolStateError",
    "SharedSegmentError",
    "WorkerCrashError",
    "BlockTimeoutError",
    "DataCorruptionError",
    "CheckpointError",
    "ServingError",
    "CacheError",
    "RegistryError",
    "OverloadError",
    "ServeTimeoutError",
    "DistributedError",
    "WorkerUnavailableError",
    "LeaseExpiredError",
    "PayloadChecksumError",
    "DistributedProtocolError",
    "FleetLostError",
    "error_code",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""

    #: Stable machine-readable identifier; subclasses override.
    code: str = "REPRO_ERROR"

    def __str__(self) -> str:
        base = super().__str__()
        return f"[{self.code}] {base}" if base else f"[{self.code}]"


def error_code(exc: BaseException) -> str | None:
    """The stable ``REPRO_*`` code of ``exc``, or ``None`` for foreign errors."""
    code = getattr(exc, "code", None)
    return code if isinstance(code, str) and code.startswith("REPRO_") else None


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad type, shape, or value)."""

    code = "REPRO_VALIDATION"


class DataShapeError(ValidationError):
    """Input arrays have incompatible or unusable shapes."""

    code = "REPRO_DATA_SHAPE"


class BandwidthGridError(ValidationError):
    """A bandwidth grid is malformed (non-positive, unsorted, empty...)."""

    code = "REPRO_BANDWIDTH_GRID"


class DegenerateDataError(ReproError):
    """The data admit no meaningful bandwidth choice.

    Raised e.g. when every ``X_i`` is identical (zero domain) so no
    compact-support kernel can ever have a non-empty leave-one-out window.
    """

    code = "REPRO_DEGENERATE_DATA"


class SelectionError(ReproError):
    """Bandwidth selection failed to produce a usable optimum."""

    code = "REPRO_SELECTION"


class BackendError(ReproError):
    """A computation backend is unknown or unavailable."""

    code = "REPRO_BACKEND"


class CompiledUnavailableError(BackendError):
    """The JIT-compiled hot path is unavailable (numba missing or disabled).

    Raised only when a caller *demanded* the compiled implementation
    (``require_jit=True``, or a chaos-injected JIT loss): the default
    behaviour is a silent, capability-probed fallback to the numpy
    implementation, which is byte-identical in float64.  Structural, not
    transient — no retry can install numba — so the resilience chain
    degrades ``compiled → numpy`` (and ``blocked-compiled → blocked``)
    losslessly.
    """

    code = "REPRO_COMPILED_UNAVAILABLE"


class GpuSimError(ReproError):
    """Base class for GPU-simulator errors (mirrors ``cudaError_t``)."""

    code = "REPRO_GPUSIM"


class DeviceMemoryError(GpuSimError, MemoryError):
    """Global-memory allocation failed (``cudaErrorMemoryAllocation``).

    The paper hits exactly this above n = 20,000: the two n-by-n float32
    matrices no longer fit in the Tesla's 4 GB of device memory.
    """

    code = "REPRO_DEVICE_OOM"


class ConstantMemoryError(GpuSimError):
    """Constant-memory working set exceeded.

    The paper bounds the number of bandwidths at 2,048 because the typical
    constant-memory *cache* working set is 8 KB (2,048 float32 values).
    """

    code = "REPRO_CONST_MEM"


class SharedMemoryError(GpuSimError):
    """A block requested more shared memory than the SM provides."""

    code = "REPRO_SHARED_MEM"


class LaunchConfigurationError(GpuSimError):
    """Invalid kernel launch configuration (``cudaErrorInvalidConfiguration``)."""

    code = "REPRO_LAUNCH_CONFIG"


class DeviceStateError(GpuSimError):
    """Operation attempted on a freed buffer or reset device."""

    code = "REPRO_DEVICE_STATE"


class KernelExecutionError(GpuSimError):
    """A device kernel raised during simulated execution."""

    code = "REPRO_KERNEL_EXEC"


class MemoryBudgetError(ValidationError):
    """A host-memory byte budget cannot accommodate the computation.

    Raised by the blockwise planner when the budget is smaller than the
    fixed working set plus a single row block — no block size B can make
    the sweep fit, so the configuration (not the data) is at fault.
    """

    code = "REPRO_MEM_BUDGET"


class SharedSegmentError(ReproError):
    """A shared-memory segment vanished or failed to attach.

    Models an unlinked/evicted POSIX shm segment under a live worker pool
    (a ``/dev/shm`` purge, an external ``shm_unlink``): the zero-copy
    substrate is structurally gone, so the engine degrades to the
    process-local ``blocked`` backend rather than retrying in place.
    """

    code = "REPRO_SHM_SEGMENT"


class PoolStateError(ReproError):
    """Operation attempted on a closed (retired) worker pool.

    The process-pool analogue of :class:`DeviceStateError`: a
    :class:`~repro.parallel.WorkerPool` that has been closed stays closed —
    re-entering it would silently fork a fresh set of workers behind the
    caller's back, so the attempt is rejected with this typed error instead
    of a raw ``multiprocessing`` ``ValueError``.
    """

    code = "REPRO_POOL_STATE"


class WorkerCrashError(ReproError):
    """A pool worker died while executing a work unit.

    Models a segfaulted/OOM-killed child process: the block's partial
    result is lost, and the pool may need to be rebuilt before retrying.
    """

    code = "REPRO_WORKER_CRASH"


class BlockTimeoutError(ReproError):
    """A work unit exceeded its per-block deadline.

    Models a hung worker (deadlocked fork, livelocked NFS read...): the
    parent gives up on the in-flight result, rebuilds the pool, and
    recomputes the block.
    """

    code = "REPRO_BLOCK_TIMEOUT"


class DataCorruptionError(ReproError):
    """A partial result failed its integrity check (NaN/Inf contamination).

    Models silent data corruption — a bad DIMM, a truncated shard, an
    undetected float overflow in a worker — caught by the resilience
    layer's finiteness check on every block of partial CV sums.
    """

    code = "REPRO_DATA_CORRUPT"


class CheckpointError(ReproError):
    """A checkpoint file is unreadable or belongs to a different sweep."""

    code = "REPRO_CHECKPOINT"


class ServingError(ReproError):
    """Base class for errors raised by the serving layer."""

    code = "REPRO_SERVING"


class CacheError(ServingError):
    """An artifact-cache entry is unreadable or fails its integrity check.

    A corrupt or truncated cache file is treated as a miss by the read
    path wherever possible; this error surfaces only when the cache
    itself is misconfigured (bad budget, unwritable directory) or a
    stored payload contradicts its own metadata.
    """

    code = "REPRO_CACHE"


class RegistryError(ServingError):
    """A model-registry operation referenced an unknown or duplicate model."""

    code = "REPRO_REGISTRY"


class OverloadError(ServingError):
    """The serving layer shed a request under admission control.

    Raised when the micro-batching scheduler's bounded queue is full —
    the request never started executing, so the caller can safely retry
    against another replica or after backoff.  Mapped to HTTP 429 by the
    server.
    """

    code = "REPRO_SERVE_OVERLOAD"


class ServeTimeoutError(ServingError):
    """A request exceeded its deadline (server side) or timed out (client).

    Shared between the serving server (per-request deadline / connection
    read timeout, mapped to HTTP 504) and the distributed RPC client
    (a worker that accepted a connection but never answered).  Either
    way the work may or may not have run — the caller must treat the
    outcome as unknown and rely on at-most-once fold accounting before
    retrying.
    """

    code = "REPRO_SERVE_TIMEOUT"


class DistributedError(ReproError):
    """Base class for coordinator/worker fleet errors (``REPRO_DIST_*``).

    Models the failure surface of ROADMAP item 2's sharded selection:
    everything that can go wrong *between* processes — unreachable
    workers, expired block leases, corrupt payloads — as opposed to the
    in-process faults the resilience layer already classifies.
    """

    code = "REPRO_DIST"


class WorkerUnavailableError(DistributedError):
    """A worker endpoint refused, dropped, or reset the connection.

    Models a killed pod / crashed worker process: the request provably
    did not complete on this worker, so the block can be re-dispatched
    to another worker without double-fold risk.
    """

    code = "REPRO_DIST_UNREACHABLE"


class LeaseExpiredError(DistributedError):
    """A block lease passed its deadline before a result arrived.

    Models a straggling or hung worker: the coordinator re-dispatches
    the block under a new lease epoch; any late result from the old
    epoch is discarded by the at-most-once fold accounting.
    """

    code = "REPRO_DIST_LEASE_EXPIRED"


class PayloadChecksumError(DistributedError):
    """A worker's partial result failed its payload checksum.

    Models corruption on the wire or in a worker's memory: the rows do
    not hash to the checksum the worker computed over its own output
    (or the checksum itself is malformed), so the block is recomputed
    rather than folded.
    """

    code = "REPRO_DIST_CHECKSUM"


class DistributedProtocolError(DistributedError):
    """A fleet message is structurally malformed (not a fault, a bug).

    Unknown message fields, missing block bounds, a response for a
    dataset the worker never staged: these indicate version skew or a
    programming error, not a transient fault, so they are not retried.
    """

    code = "REPRO_DIST_PROTOCOL"


class FleetLostError(DistributedError):
    """No live workers remain (fleet unreachable or quorum lost).

    The coordinator raises this to trigger the lossless degradation
    spur: the sweep falls back to the local ``blocked`` backend with an
    explicit report — never a wrong answer.
    """

    code = "REPRO_DIST_FLEET_LOST"
