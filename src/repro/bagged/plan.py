"""Seeded subsample planning.

A :class:`SubsamplePlan` fixes everything stochastic about a bagged
selection *up front*: ``r`` draws of size ``m`` without replacement,
each drawn from its own child stream of one root seed
(:func:`repro.utils.rng.spawn_seed`).  Draw ``i`` is a pure function of
``(root_seed, i, n, m)`` — independent of execution order, of which
backend runs the sweep, and of how many times a faulted subsample is
retried.  That per-index determinism is the whole bit-for-bit story:
re-dispatching subsample 7 after a worker crash re-derives the identical
index set, so the recomputed curve is byte-identical to the one the
crash destroyed.

Default sizes follow arXiv:2105.04134's guidance: the subsample size
grows polynomially, ``m ∼ n^0.7`` (their experiments use ``m = n^a``
with ``a ≈ 0.6–0.8``), and a modest number of subsamples suffices
because bagging averages the CV noise down by ``1/√r``.  ``m`` is
additionally capped so one subsample sweep stays O(seconds) — the whole
point of the subsystem is that cost is O(r·m²·log k) instead of
O(n²·log k).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import spawn_seed, spawn_seeds
from repro.utils.validation import check_positive_int

__all__ = [
    "DEFAULT_SUBSAMPLES",
    "MAX_DEFAULT_SUBSAMPLE_SIZE",
    "MIN_SUBSAMPLE_SIZE",
    "SubsamplePlan",
    "default_subsample_size",
    "default_subsamples",
    "plan_subsamples",
    "resolve_plan_options",
]

#: Default number of subsamples r.  arXiv:2105.04134 finds small ensembles
#: (tens, not hundreds) already track full-sample CV closely; the marginal
#: variance reduction beyond ~20 is paid linearly in sweep time.
DEFAULT_SUBSAMPLES: int = 20

#: Cap on the default m = ceil(n^0.7): one m=5000 fast-grid sweep is a few
#: seconds (BENCH_blockwise.json), keeping even n=10⁶ selection interactive.
MAX_DEFAULT_SUBSAMPLE_SIZE: int = 5000

#: Floor on the default m: below ~100 points the subsample CV curve is too
#: noisy for the rescaling rate to transfer.
MIN_SUBSAMPLE_SIZE: int = 100


def default_subsample_size(n: int) -> int:
    """The default ``m`` for a sample of size ``n`` (``∼ n^0.7``, capped)."""
    n = check_positive_int(n, name="n")
    m = int(np.ceil(float(n) ** 0.7))
    m = min(m, MAX_DEFAULT_SUBSAMPLE_SIZE)
    m = max(m, MIN_SUBSAMPLE_SIZE)
    return min(m, n)


def default_subsamples(n: int, m: int) -> int:
    """The default ``r``: one draw suffices when m = n (nothing to bag)."""
    return 1 if m >= n else DEFAULT_SUBSAMPLES


@dataclass(frozen=True)
class SubsamplePlan:
    """``r`` seeded draws of size ``m`` from ``n`` observations.

    The plan is pure data: it holds no arrays, only the recipe.  Index
    sets are re-derived on demand from ``(root_seed, i)``, so shipping a
    plan to a worker costs four ints and a retry replays its draw.
    """

    n: int
    subsample_size: int
    n_subsamples: int
    root_seed: int

    def __post_init__(self) -> None:
        if self.n < 3:
            raise ValidationError(f"need n >= 3 observations, got {self.n}")
        if not 3 <= self.subsample_size <= self.n:
            raise ValidationError(
                f"subsample_size must be in [3, n={self.n}], "
                f"got {self.subsample_size}"
            )
        if self.n_subsamples < 1:
            raise ValidationError(
                f"n_subsamples must be >= 1, got {self.n_subsamples}"
            )

    # -- derivations -------------------------------------------------------

    def seeds(self) -> tuple[np.random.SeedSequence, ...]:
        """Per-subsample child seed sequences, in index order."""
        return spawn_seeds(self.root_seed, self.n_subsamples)

    def indices(self, i: int) -> np.ndarray:
        """The ``i``-th index set: sorted, without replacement, replayable.

        Sorting keeps the subsample in global row order, which both aids
        locality in the sweep and makes the draw canonical — any code
        path that re-derives it gets the identical array.
        """
        if not 0 <= i < self.n_subsamples:
            raise ValidationError(
                f"subsample index {i} out of range [0, {self.n_subsamples})"
            )
        rng = np.random.default_rng(spawn_seed(self.root_seed, i))
        drawn = rng.choice(self.n, size=self.subsample_size, replace=False)
        return np.sort(drawn)

    def take(
        self, i: int, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """The ``i``-th subsample of a paired dataset."""
        if x.shape[0] != self.n:
            raise ValidationError(
                f"plan was made for n={self.n} but x has {x.shape[0]} rows"
            )
        idx = self.indices(i)
        return x[idx], y[idx]

    def to_dict(self) -> dict[str, int]:
        """JSON-ready recipe (diagnostics / fingerprints)."""
        return {
            "n": self.n,
            "subsample_size": self.subsample_size,
            "n_subsamples": self.n_subsamples,
            "root_seed": self.root_seed,
        }


def plan_subsamples(
    n: int,
    *,
    subsamples: int | None = None,
    subsample_size: int | None = None,
    root_seed: int = 0,
) -> SubsamplePlan:
    """Build a plan, resolving ``None`` sizes to the paper-guided defaults."""
    n = check_positive_int(n, name="n")
    if subsample_size is None:
        m = default_subsample_size(n)
    else:
        m = check_positive_int(subsample_size, name="subsample_size")
        if m > n:
            raise ValidationError(
                f"subsample_size={m} exceeds the sample size n={n}"
            )
    r = default_subsamples(n, m) if subsamples is None else subsamples
    return SubsamplePlan(
        n=n,
        subsample_size=int(m),
        n_subsamples=check_positive_int(r, name="subsamples"),
        root_seed=int(root_seed),
    )


def resolve_plan_options(n: int, options: dict[str, Any]) -> dict[str, Any]:
    """Options with ``subsamples``/``subsample_size``/``root_seed`` made
    explicit.

    :func:`repro.core.api.select_bandwidth` normalises the option dict
    through here *before* computing the selection fingerprint, so the
    serving-cache key always contains the concrete ``(root seed, r, m)``
    — two calls that resolve to the same plan hit the same cache entry
    whether the caller spelled the defaults out or not.
    """
    plan = plan_subsamples(
        n,
        subsamples=options.get("subsamples"),
        subsample_size=options.get("subsample_size"),
        root_seed=int(options.get("root_seed", 0)),
    )
    resolved = dict(options)
    resolved["subsamples"] = plan.n_subsamples
    resolved["subsample_size"] = plan.subsample_size
    resolved["root_seed"] = plan.root_seed
    return resolved
