"""The bagged subsampled-CV bandwidth selector.

``BaggedCVSelector`` turns the paper's fast grid search into the inner
loop of the Barreiro-Ures / Cao / Francisco-Fernández estimator
(arXiv:2105.04134): run the sweep on ``r`` seeded subsamples of size
``m ≪ n``, pick each subsample's CV-optimal bandwidth, rescale to
full-sample scale by the known ``h ∼ n^(−1/5)`` rate, and aggregate in
log space.  Total cost is O(r·m²·log k) instead of O(n²·log k) — at
n = 100,000 that is a ~50× saving over the exact blocked sweep
(BENCH_bagged.json) for a bandwidth on the same candidate grid.

Grid-matched rescaling
----------------------
Rather than sweeping each subsample over its own ad-hoc grid and
rescaling the winning float, the selector inflates the *full-sample*
grid by ``(n/m)^rate`` once, sweeps every subsample over that inflated
grid, and maps the argmin **index** back to the full-sample grid.  Each
subsample therefore votes for an exact full-grid point — the bagged
selection answers the same question as the exact sweep ("which of these
k candidates minimises CV") and the two are directly comparable with no
float round-trip error.

Determinism contract
--------------------
Subsample draw ``i`` is a pure function of ``(root_seed, i)``
(:mod:`repro.bagged.plan`), every fast-grid backend in the strict-fold
family (numpy / multicore / blocked / blocked-shm / distributed)
produces byte-identical curves, and aggregation folds the per-subsample
results in index order.  Hence the bagged ``h_opt`` is bit-for-bit
identical across backends, across serial vs. pooled dispatch, and
across fault/retry schedules — a retried subsample re-derives the same
draw and recomputes the same curve.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.exceptions import ValidationError
from repro.kernels import get_kernel
from repro.core.backends import get_backend
from repro.core.grid import BandwidthGrid
from repro.core.result import SelectionResult
from repro.core.selectors import BandwidthSelector, _argmin_with_empty_window_guard
from repro.bagged.aggregate import AGGREGATORS, SubsampleOutcome, aggregate_bandwidths
from repro.bagged.plan import SubsamplePlan, plan_subsamples
from repro.bagged.rescale import DEFAULT_RATE_EXPONENT, scale_factor
from repro.obs.tracer import current_tracer
from repro.parallel import WorkerPool
from repro.parallel.pool import traced_work_unit
from repro.resilience import faults
from repro.utils.validation import check_paired_samples, check_positive_int

if TYPE_CHECKING:  # deferred: serving/resilience import the core back
    from repro.resilience.engine import ResilienceConfig
    from repro.serving.cache import ArtifactCache

__all__ = ["BaggedCVSelector"]

#: Backends whose sweep is already process-parallel; fanning whole
#: subsamples over a pool on top of them would nest process pools.
_PARALLEL_BACKENDS = ("multicore", "blocked-shm", "distributed")


def _subsample_unit(
    index: int,
    x: np.ndarray,
    y: np.ndarray,
    scaled_values: np.ndarray,
    kernel_name: str,
    backend_name: str,
    plan_fields: tuple[int, int, int, int],
    backend_options: dict[str, Any],
) -> np.ndarray:
    """One subsample sweep: re-derive the draw, run the backend.

    Top-level (hence picklable) so the pooled dispatch path can ship it
    to forked workers; the draw is re-derived from ``(root_seed, index)``
    inside the unit, so only four ints travel instead of an index array.
    """
    plan = SubsamplePlan(*plan_fields)
    with current_tracer().span(
        f"bagged.subsample[{index}]", index=index, m=plan.subsample_size
    ):
        xs, ys = plan.take(index, x, y)
        backend = get_backend(backend_name)
        return np.asarray(
            backend(xs, ys, scaled_values, kernel_name, **backend_options),
            dtype=np.float64,
        )


class BaggedCVSelector(BandwidthSelector):
    """Bagged subsampled-CV selection for huge ``n``.

    Parameters
    ----------
    kernel:
        Kernel name or instance (same registry as the exact selectors).
    n_bandwidths, grid:
        The *full-sample* candidate grid (paper convention
        ``[domain/k, domain]`` when no explicit grid is given).  Each
        subsample sweeps this grid inflated by ``(n/m)^rate``.
    backend:
        Inner sweep backend for each subsample: any registered grid
        backend — ``"numpy"`` (default), ``"multicore"``, ``"blocked"``,
        ``"blocked-shm"``, ``"distributed"`` ... All strict-fold backends
        yield bit-identical bagged selections.
    subsamples, subsample_size, root_seed:
        The plan: ``r`` seeded draws of size ``m`` (defaults per
        arXiv:2105.04134's guidance, see :mod:`repro.bagged.plan`).
        Identical ``(root_seed, r, m, grid)`` always reproduce the same
        selection bit-for-bit.
    aggregate:
        ``"mean-log"`` (geometric mean, default) or ``"median-log"``.
    rate:
        Rate exponent for the ``h ∼ n^(−rate)`` rescaling (``1/5``
        univariate; see :func:`repro.bagged.rescale.rate_exponent`).
    subsample_workers:
        ``> 1`` fans whole subsample sweeps across a process pool
        (serial backends only — the parallel backends already fan out
        internally).  Dispatch order cannot change the result.
    cache:
        An :class:`~repro.serving.cache.ArtifactCache`: each subsample's
        CV curve is fingerprint-keyed, so a warm curve skips that
        subsample's sweep bit-for-bit.  (Whole-selection warm hits are
        handled one level up by :func:`repro.core.api.select_bandwidth`.)
    resilience:
        ``True`` or a :class:`~repro.resilience.engine.ResilienceConfig`:
        a faulted subsample sweep is retried under the policy with its
        draw re-derived deterministically; when retries are exhausted and
        fallback is enabled, the subsample degrades to the serial numpy
        backend — lossless, since the strict-fold family is
        byte-identical.
    backend_options:
        Forwarded to every subsample sweep (``memory_budget``,
        ``workers``, ``fleet``, ``dtype`` ...).
    """

    method = "bagged-cv"

    def __init__(
        self,
        kernel: str = "epanechnikov",
        *,
        n_bandwidths: int = 50,
        grid: BandwidthGrid | None = None,
        backend: str = "numpy",
        subsamples: int | None = None,
        subsample_size: int | None = None,
        root_seed: int = 0,
        aggregate: str = "mean-log",
        rate: float = DEFAULT_RATE_EXPONENT,
        subsample_workers: int = 1,
        cache: "ArtifactCache | None" = None,
        resilience: "ResilienceConfig | bool | None" = None,
        **backend_options: Any,
    ) -> None:
        self.kernel = get_kernel(kernel)
        self.n_bandwidths = check_positive_int(n_bandwidths, name="n_bandwidths")
        self.grid = grid
        self.backend_name = backend
        self.subsamples = subsamples
        self.subsample_size = subsample_size
        self.root_seed = int(root_seed)
        if aggregate not in AGGREGATORS:
            raise ValidationError(
                f"unknown aggregate {aggregate!r}; known: {', '.join(AGGREGATORS)}"
            )
        self.aggregate = aggregate
        self.rate = float(rate)
        self.subsample_workers = check_positive_int(
            subsample_workers, name="subsample_workers"
        )
        if self.subsample_workers > 1 and backend in _PARALLEL_BACKENDS:
            raise ValidationError(
                f"subsample_workers > 1 would nest process pools on the "
                f"already-parallel {backend!r} backend; parallelise either "
                "across subsamples or inside the sweep, not both"
            )
        self.cache = cache
        if resilience is not None:
            from repro.resilience.engine import ResilienceConfig

            self.resilience = ResilienceConfig.coerce(resilience)
        else:
            self.resilience = None
        self.backend_options = backend_options

    # -- internals ---------------------------------------------------------

    def _grid_for(self, x: np.ndarray) -> BandwidthGrid:
        if self.grid is not None:
            return self.grid
        return BandwidthGrid.for_sample(x, self.n_bandwidths)

    def _curve_key(
        self, xs: np.ndarray, ys: np.ndarray, scaled_values: np.ndarray,
        backend_name: str,
    ) -> str:
        from repro.serving.cache import curve_fingerprint

        return curve_fingerprint(
            xs,
            ys,
            scaled_values,
            self.kernel.name,
            backend=backend_name,
            dtype=str(self.backend_options.get("dtype", "default")),
        )

    def _sweep_one(
        self,
        plan: SubsamplePlan,
        index: int,
        x: np.ndarray,
        y: np.ndarray,
        scaled_values: np.ndarray,
        backend_name: str,
    ) -> np.ndarray:
        """One (possibly cached) subsample sweep, chaos hook included."""
        faults.fire("bagged.subsample", f"subsample[{index}]")
        xs, ys = plan.take(index, x, y)
        tracer = current_tracer()
        if self.cache is not None:
            key = self._curve_key(xs, ys, scaled_values, backend_name)
            warm = self.cache.get_curve(key)
            if warm is not None and warm.shape == scaled_values.shape:
                tracer.counter("curve_cache.hit")
                return warm
            tracer.counter("curve_cache.miss")
        backend = get_backend(backend_name)
        scores = np.asarray(
            backend(xs, ys, scaled_values, self.kernel, **self.backend_options),
            dtype=np.float64,
        )
        if self.cache is not None:
            self.cache.put_curve(key, scaled_values, scores)
        return scores

    def _serial_curves(
        self,
        plan: SubsamplePlan,
        x: np.ndarray,
        y: np.ndarray,
        scaled_values: np.ndarray,
        report: Any,
    ) -> tuple[list[np.ndarray], list[int]]:
        """Index-ordered subsample curves with per-subsample retry."""
        from repro.resilience.degrade import is_retryable
        from repro.resilience.policy import RetryBudgetExceeded, run_with_retry

        tracer = current_tracer()
        curves: list[np.ndarray] = []
        attempts: list[int] = []
        jitter = (
            self.resilience.policy.jitter_rng()
            if self.resilience is not None
            else None
        )
        for i in range(plan.n_subsamples):
            with tracer.span(
                f"bagged.subsample[{i}]", index=i, m=plan.subsample_size
            ) as span:
                count = 1

                def compute(index: int = i) -> np.ndarray:
                    return self._sweep_one(
                        plan, index, x, y, scaled_values, self.backend_name
                    )

                if self.resilience is None:
                    scores = compute()
                else:

                    def on_retry(exc: BaseException, attempt: int) -> None:
                        nonlocal count
                        count = attempt + 1
                        report.retries += 1
                        report.record_fault(f"bagged.subsample[{i}]", exc)
                        tracer.counter("bagged.retries")

                    try:
                        scores = run_with_retry(
                            compute,
                            policy=self.resilience.policy,
                            retryable=is_retryable,
                            on_retry=on_retry,
                            sleep=self.resilience.sleep,
                            rng=jitter,
                            label=f"bagged.subsample[{i}]",
                        )
                    except RetryBudgetExceeded as exc:
                        if not (
                            self.resilience.fallback
                            and self.backend_name != "numpy"
                        ):
                            raise
                        # Lossless degradation: the strict-fold family is
                        # byte-identical, so recomputing this subsample on
                        # the serial terminal cannot change the selection.
                        report.record_fault(f"bagged.subsample[{i}]", exc)
                        report.record_attempt(self.backend_name, "degraded")
                        tracer.counter("bagged.subsample_fallbacks")
                        span.set(fallback="numpy")
                        scores = self._sweep_one(
                            plan, i, x, y, scaled_values, "numpy"
                        )
                span.set(attempts=count)
                curves.append(scores)
                attempts.append(count)
        return curves, attempts

    def _pooled_curves(
        self,
        plan: SubsamplePlan,
        x: np.ndarray,
        y: np.ndarray,
        scaled_values: np.ndarray,
    ) -> list[np.ndarray]:
        """Subsample sweeps fanned across a process pool, in index order.

        Fault directives for the ``bagged.subsample`` site are drawn in
        the parent *before* dispatch (the library-wide discipline), so a
        chaos schedule replays identically regardless of scheduling.
        """
        directives = faults.draw_many(
            "bagged.subsample", plan.n_subsamples, "bagged"
        )
        for index, kind in enumerate(directives):
            if kind is not None:
                faults.faulty_call(kind, lambda: None)
        plan_fields = (
            plan.n, plan.subsample_size, plan.n_subsamples, plan.root_seed,
        )
        args_list = [
            (
                i, x, y, scaled_values, self.kernel.name,
                self.backend_name, plan_fields, self.backend_options,
            )
            for i in range(plan.n_subsamples)
        ]
        tracer = current_tracer()
        pool = WorkerPool(self.subsample_workers)
        try:
            pool.open()
            if not tracer.enabled:
                outputs = pool.starmap(_subsample_unit, args_list)
                return [np.asarray(out, dtype=np.float64) for out in outputs]
            with tracer.span(
                "bagged.dispatch",
                workers=pool.workers,
                subsamples=plan.n_subsamples,
            ) as parent:
                wrapped = [(_subsample_unit,) + tuple(args) for args in args_list]
                shipped = pool.starmap(traced_work_unit, wrapped)
                curves = []
                for value, spans, counters, maxima in shipped:
                    curves.append(np.asarray(value, dtype=np.float64))
                    tracer.adopt(spans, parent_id=parent.span_id)
                    tracer.merge_counters(counters, maxima)
            return curves
        finally:
            pool.close()

    # -- selection ---------------------------------------------------------

    def select(self, x: np.ndarray, y: np.ndarray) -> SelectionResult:
        x, y = check_paired_samples(x, y)
        n = int(x.shape[0])
        start = time.perf_counter()
        tracer = current_tracer()

        report: Any = None
        if self.resilience is not None:
            from repro.resilience.degrade import ResilienceReport

            report = ResilienceReport()
            report.backend_requested = self.backend_name
            report.backend_used = self.backend_name

        with tracer.span(
            "bagged.plan", n=n, root_seed=self.root_seed, rate=self.rate
        ) as plan_span:
            plan = plan_subsamples(
                n,
                subsamples=self.subsamples,
                subsample_size=self.subsample_size,
                root_seed=self.root_seed,
            )
            base_grid = self._grid_for(x)
            factor = scale_factor(plan.subsample_size, n, rate=self.rate)
            scaled_values = base_grid.values * factor
            plan_span.set(
                m=plan.subsample_size, r=plan.n_subsamples, scale_factor=factor,
            )

        if self.subsample_workers > 1 and self.resilience is None:
            curves = self._pooled_curves(plan, x, y, scaled_values)
            attempts = [1] * plan.n_subsamples
        else:
            curves, attempts = self._serial_curves(
                plan, x, y, scaled_values, report
            )

        outcomes: list[SubsampleOutcome] = []
        for i, scores in enumerate(curves):
            j = _argmin_with_empty_window_guard(scores)
            outcomes.append(
                SubsampleOutcome(
                    index=i,
                    argmin=j,
                    bandwidth=float(scaled_values[j]),
                    rescaled_bandwidth=float(base_grid.values[j]),
                    score=float(scores[j]),
                    attempts=attempts[i],
                    bandwidths=scaled_values,
                    scores=scores,
                )
            )

        with tracer.span(
            "bagged.aggregate", r=plan.n_subsamples, aggregate=self.aggregate
        ) as agg_span:
            rescaled = np.array(
                [o.rescaled_bandwidth for o in outcomes], dtype=np.float64
            )
            sub_scores = np.array([o.score for o in outcomes], dtype=np.float64)
            h_opt = aggregate_bandwidths(rescaled, aggregate=self.aggregate)
            score = float(np.mean(sub_scores))
            agg_span.set(h_opt=h_opt)

        wall = time.perf_counter() - start
        diagnostics: dict[str, Any] = {
            "grid_minimum": base_grid.minimum,
            "grid_maximum": base_grid.maximum,
            "bagged": {
                **plan.to_dict(),
                "rate": self.rate,
                "aggregate": self.aggregate,
                "scale_factor": factor,
                # `score` is the mean of per-subsample CV minima — an
                # estimate of CV at scale m, NOT the full-sample CV at
                # h_opt (evaluating that would reintroduce the O(n²)
                # cost this selector exists to avoid).
                "score_semantics": "mean of per-subsample CV minima",
                "subsamples": [o.to_diagnostics() for o in outcomes],
            },
        }
        return SelectionResult(
            bandwidth=h_opt,
            score=score,
            method=self.method,
            backend=self.backend_name,
            kernel=self.kernel.name,
            n_observations=n,
            bandwidths=rescaled,
            scores=sub_scores,
            n_evaluations=plan.n_subsamples * len(base_grid),
            wall_seconds=wall,
            converged=True,
            diagnostics=diagnostics,
            resilience=report,
        )
