"""Aggregation of per-subsample bandwidths.

arXiv:2105.04134 aggregates the ``r`` rescaled subsample bandwidths in
log space — bandwidths live on a multiplicative scale, so the mean of
``log h`` (a geometric mean) is the natural centre and the median of
``log h`` the robust alternative.  Both are computed over the
subsample-index-ordered array, so the aggregate is a pure function of
the (deterministic) per-subsample results: execution order, retries,
and backend choice cannot move it by a ULP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["AGGREGATORS", "SubsampleOutcome", "aggregate_bandwidths"]

#: Supported aggregation modes.
AGGREGATORS = ("mean-log", "median-log")


@dataclass(frozen=True)
class SubsampleOutcome:
    """One subsample sweep's contribution to the bagged selection.

    ``bandwidth`` is at subsample scale (the argmin on the inflated
    grid); ``rescaled_bandwidth`` is the same grid index mapped back to
    the full-sample grid — an exact grid point, not a float round-trip.
    """

    index: int
    argmin: int
    bandwidth: float
    rescaled_bandwidth: float
    score: float
    attempts: int = 1
    bandwidths: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64)
    )
    scores: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.float64))

    def to_diagnostics(self, *, include_curve: bool = True) -> dict[str, Any]:
        """JSON-ready record for ``SelectionResult.diagnostics``."""
        record: dict[str, Any] = {
            "index": self.index,
            "argmin": self.argmin,
            "bandwidth": self.bandwidth,
            "rescaled_bandwidth": self.rescaled_bandwidth,
            "score": self.score,
            "attempts": self.attempts,
        }
        if include_curve and self.scores.size:
            record["curve"] = {
                "bandwidths": np.asarray(self.bandwidths, dtype=np.float64).tolist(),
                "scores": np.asarray(self.scores, dtype=np.float64).tolist(),
            }
        return record


def aggregate_bandwidths(
    values: Sequence[float] | np.ndarray, *, aggregate: str = "mean-log"
) -> float:
    """Collapse per-subsample bandwidths into one (log-space mean/median)."""
    if aggregate not in AGGREGATORS:
        raise ValidationError(
            f"unknown aggregate {aggregate!r}; known: {', '.join(AGGREGATORS)}"
        )
    h = np.asarray(values, dtype=np.float64)
    if h.ndim != 1 or h.size == 0:
        raise ValidationError("need a non-empty 1-D array of bandwidths")
    if not (np.isfinite(h).all() and (h > 0.0).all()):
        raise ValidationError("bandwidths must be positive and finite")
    if bool(np.all(h == h[0])):
        # Unanimous votes pass through exactly: exp(mean(log h)) is a
        # lossy round-trip, and with grid-matched rescaling every vote is
        # an exact grid point the caller may compare against (the m = n
        # degenerate case must reduce to the exact sweep bit-for-bit).
        return float(h[0])
    logs = np.log(h)
    if aggregate == "mean-log":
        return float(np.exp(np.mean(logs)))
    if h.size % 2:
        # Odd count: the median is an actual vote — return it exactly
        # rather than round-tripping through exp(log(...)).
        order = np.argsort(logs, kind="stable")
        return float(h[order[h.size // 2]])
    return float(np.exp(np.median(logs)))
