"""Bandwidth rescaling between subsample scale and full-sample scale.

The bagged estimator (Barreiro-Ures, Cao & Francisco-Fernández,
arXiv:2105.04134) rests on the asymptotic rate of the CV-optimal
bandwidth: ``h_opt(n) ∼ C·n^(−1/(d+4))``, i.e. ``n^(−1/5)`` for the
univariate regression this repo reproduces.  A bandwidth selected on a
subsample of size ``m`` therefore transfers to the full sample of size
``n`` by ``h_n = h_m · (m/n)^rate``.

Two symmetric primitives:

* :func:`scale_factor` / :func:`scale_grid` — inflate a full-sample
  bandwidth grid by ``(n/m)^rate`` so each subsample sweep searches the
  *image* of the full-sample grid at subsample scale.  The argmin index
  on the inflated grid then maps back to an exact full-grid point (no
  float round-trip), which keeps bagged and exact selections directly
  comparable on the same candidate set.
* :func:`rescale_bandwidth` — deflate a subsample-scale bandwidth by
  ``(m/n)^rate``, the raw estimator of the paper.

The rate exponent is configurable (``1/(d+4)``) so the multivariate
fast-grid sweep can reuse the subsystem unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "DEFAULT_RATE_EXPONENT",
    "rate_exponent",
    "rescale_bandwidth",
    "scale_factor",
    "scale_grid",
]

#: Univariate CV rate: ``h_opt ∼ n^(−1/5)``.
DEFAULT_RATE_EXPONENT: float = 0.2


def rate_exponent(n_features: int = 1) -> float:
    """The AMISE-optimal rate exponent ``1/(d+4)`` for ``d`` features."""
    if n_features < 1:
        raise ValidationError(f"n_features must be >= 1, got {n_features}")
    return 1.0 / (float(n_features) + 4.0)


def _check_sizes(m: int, n: int, rate: float) -> None:
    if not 0.0 < rate < 1.0:
        raise ValidationError(f"rate exponent must be in (0, 1), got {rate}")
    if m < 1 or n < 1:
        raise ValidationError(f"sample sizes must be >= 1, got m={m}, n={n}")
    if m > n:
        raise ValidationError(f"subsample size m={m} exceeds sample size n={n}")


def scale_factor(m: int, n: int, *, rate: float = DEFAULT_RATE_EXPONENT) -> float:
    """``(n/m)^rate`` — grid inflation from full-sample to subsample scale."""
    _check_sizes(m, n, rate)
    return float((float(n) / float(m)) ** rate)


def scale_grid(
    values: np.ndarray, m: int, n: int, *, rate: float = DEFAULT_RATE_EXPONENT
) -> np.ndarray:
    """A full-sample grid inflated to subsample scale (float64 copy)."""
    grid = np.asarray(values, dtype=np.float64)
    return grid * scale_factor(m, n, rate=rate)


def rescale_bandwidth(
    h_m: float, m: int, n: int, *, rate: float = DEFAULT_RATE_EXPONENT
) -> float:
    """``h_m · (m/n)^rate`` — a subsample bandwidth at full-sample scale."""
    _check_sizes(m, n, rate)
    if not (np.isfinite(h_m) and h_m > 0.0):
        raise ValidationError(f"bandwidth must be positive and finite, got {h_m}")
    return float(h_m) * float((float(m) / float(n)) ** rate)
