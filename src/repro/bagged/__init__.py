"""Bagged subsampled-CV bandwidth selection for huge ``n``.

The estimator of Barreiro-Ures, Cao & Francisco-Fernández
(arXiv:2105.04134) with the paper's fast sorted grid search as its inner
loop: ``r`` seeded subsamples of size ``m ≪ n`` are swept over the
full-sample grid inflated by ``(n/m)^(1/5)``, each argmin maps back to
an exact full-grid point, and the votes aggregate in log space.  Cost
O(r·m²·log k) instead of O(n²·log k); results bit-for-bit reproducible
from ``(root_seed, r, m, grid)`` across every strict-fold backend.

Quickstart::

    from repro import select_bandwidth
    result = select_bandwidth(x, y, method="bagged", subsamples=20)
    result.bandwidth          # rescaled bagged h_opt
    result.diagnostics["bagged"]["subsamples"]  # per-subsample curves
"""

from repro.bagged.aggregate import AGGREGATORS, SubsampleOutcome, aggregate_bandwidths
from repro.bagged.plan import (
    DEFAULT_SUBSAMPLES,
    SubsamplePlan,
    default_subsample_size,
    default_subsamples,
    plan_subsamples,
    resolve_plan_options,
)
from repro.bagged.rescale import (
    DEFAULT_RATE_EXPONENT,
    rate_exponent,
    rescale_bandwidth,
    scale_factor,
    scale_grid,
)
from repro.bagged.selector import BaggedCVSelector

__all__ = [
    "AGGREGATORS",
    "BaggedCVSelector",
    "DEFAULT_RATE_EXPONENT",
    "DEFAULT_SUBSAMPLES",
    "SubsampleOutcome",
    "SubsamplePlan",
    "aggregate_bandwidths",
    "default_subsample_size",
    "default_subsamples",
    "plan_subsamples",
    "rate_exponent",
    "rescale_bandwidth",
    "resolve_plan_options",
    "scale_factor",
    "scale_grid",
]
