"""CI smoke test for ``repro-bench serve``.

Boots the real server process on a fixture dataset and an OS-assigned
port, fires concurrent warm/cold ``/select`` and ``/predict`` traffic
at it, then asserts the serving contract:

* the artifact-cache hit rate is > 0 (warm selections skipped sweeps);
* zero 5xx responses across all traffic;
* warm selections return bit-for-bit the bandwidth of the cold run.

Run:  python scripts/serving_smoke.py
Exit: 0 on success, 1 on any violated assertion (messages on stderr).
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

STARTUP_TIMEOUT_S = 120.0
REQUEST_TIMEOUT_S = 60.0
N_CONCURRENT_PREDICTS = 8


def fail(message: str) -> None:
    print(f"serving-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def write_fixture_csv(path: Path, n: int = 200, seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1.0, n)
    y = 0.5 * x + 10.0 * x**2 + rng.uniform(0.0, 0.5, n)
    lines = ["x,y"] + [f"{float(a)!r},{float(b)!r}" for a, b in zip(x, y)]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def start_server(data_csv: Path, cache_dir: Path) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--data",
            str(data_csv),
            "--k",
            "12",
            "--cache-dir",
            str(cache_dir),
            "--max-wait-ms",
            "10",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    banner = re.compile(r"repro serving on (http://\S+)")
    lines: list[str] = []
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            fail(
                "server exited during startup:\n" + "".join(lines)
            )
        line = proc.stdout.readline()
        lines.append(line)
        match = banner.search(line)
        if match:
            return proc, match.group(1)
    proc.kill()
    fail("server did not print its ready banner in time")
    raise AssertionError  # unreachable


def request(base: str, method: str, path: str, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=REQUEST_TIMEOUT_S) as resp:
            raw = resp.read()
            if resp.headers.get_content_type() == "application/json":
                return resp.status, json.loads(raw)
            return resp.status, raw.decode()
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def main() -> int:
    statuses: list[int] = []
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        tmpdir = Path(tmp)
        data_csv = tmpdir / "fixture.csv"
        write_fixture_csv(data_csv)
        proc, base = start_server(data_csv, tmpdir / "cache")
        try:
            status, health = request(base, "GET", "/healthz")
            statuses.append(status)
            if status != 200 or health.get("status") != "ok":
                fail(f"healthz returned {status}: {health}")
            if "default" not in health.get("models", []):
                fail(f"startup model missing from {health.get('models')}")

            rng = np.random.default_rng(1)
            x = rng.uniform(0.0, 1.0, 150).tolist()
            y = (np.asarray(x) * 2.0).tolist()
            body = {"x": x, "y": y, "n_bandwidths": 10, "register": "smoke"}
            status, cold = request(base, "POST", "/select", body)
            statuses.append(status)
            if status != 200:
                fail(f"cold select returned {status}: {cold}")
            if cold["cache_hit"]:
                fail("cold select claims a cache hit on first sight")
            status, warm = request(base, "POST", "/select", body)
            statuses.append(status)
            if status != 200 or not warm["cache_hit"]:
                fail(f"warm select not served from cache: {status} {warm}")
            if warm["result"]["bandwidth"] != cold["result"]["bandwidth"]:
                fail(
                    "warm bandwidth differs from cold: "
                    f"{warm['result']['bandwidth']} vs "
                    f"{cold['result']['bandwidth']}"
                )

            with ThreadPoolExecutor(N_CONCURRENT_PREDICTS) as pool:
                futures = [
                    pool.submit(
                        request,
                        base,
                        "POST",
                        "/predict",
                        {"model": "smoke", "at": [0.1 * (i + 1), 0.5]},
                    )
                    for i in range(N_CONCURRENT_PREDICTS)
                ]
                for future in futures:
                    status, payload = future.result()
                    statuses.append(status)
                    if status != 200:
                        fail(f"predict returned {status}: {payload}")

            status, metrics = request(base, "GET", "/metrics")
            statuses.append(status)
            hit_rate_line = next(
                (
                    line
                    for line in metrics.splitlines()
                    if line.startswith("repro_cache_hit_rate ")
                ),
                None,
            )
            if hit_rate_line is None:
                fail("metrics dump is missing repro_cache_hit_rate")
            hit_rate = float(hit_rate_line.split()[1])
            if not hit_rate > 0.0:
                fail(f"cache hit rate is {hit_rate}, expected > 0")

            fives = [s for s in statuses if s >= 500]
            if fives:
                fail(f"observed 5xx responses: {fives}")
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()

    print(
        "serving-smoke: OK "
        f"({len(statuses)} requests, hit rate {hit_rate:.3f}, zero 5xx)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
