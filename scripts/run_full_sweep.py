"""Full paper-scale sweep driver for EXPERIMENTS.md.

Runs Table I (all four programs, n up to 20,000) with a reduced but
fixed optimisation budget for the numeric programs (``n_restarts=2``,
``maxiter=40`` — enough to converge on this objective; the budget is
reported), then Table II (sequential panel measured, CUDA panel
modeled), then the shape report.  Writes artifacts to ``results/full/``.

Run:  python scripts/run_full_sweep.py        (from the repo root)
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

# Runnable straight from a checkout: put src/ on the path when the
# package is not installed.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import (  # noqa: E402
    run_table1,
    run_table2,
    shape_report,
    write_results_json,
    write_table1_csv,
    write_table2_csv,
)
from repro.bench.tables import PAPER_BANDWIDTH_COUNTS, PAPER_SIZES  # noqa: E402


def main() -> int:
    t0 = time.time()
    table1 = run_table1(
        sizes=PAPER_SIZES, k=50, seed=0, n_restarts=2, maxiter=40
    )
    print(table1.to_text())
    print()
    table2 = run_table2(
        bandwidth_counts=PAPER_BANDWIDTH_COUNTS, sizes=PAPER_SIZES, seed=0
    )
    print(table2.to_text())
    print()
    report = shape_report(table1, table2)
    print(report)
    write_table1_csv(table1, "results/full/table1.csv")
    write_table2_csv(table2, "results/full/table2.csv")
    write_results_json(
        "results/full/results.json",
        table1=table1,
        table2=table2,
        shape_report=report,
        metadata={"budget": "n_restarts=2, maxiter=40", "k": 50},
    )
    print(f"\ntotal sweep wall time: {time.time()-t0:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
