"""Blockwise out-of-core sweep: runtime and memory vs n, past the wall.

The paper's Table I stops at n = 20,000 because the CUDA program's two
n-by-n float32 matrices exhaust the 4 GB Tesla (Section IV-A).  The
blocked backend never materialises anything n-by-n, so this benchmark
walks straight past that boundary — up to n = 100,000 with ``--full`` —
while holding the whole sweep inside one byte budget.

For every size it records:

* wall-clock seconds of the full k-bandwidth sweep;
* the planner's ``predicted_peak_bytes`` and the *measured* tracemalloc
  peak (the honesty check the test suite enforces at 1.5x);
* the process RSS high-water mark (``ru_maxrss``) as OS-level evidence;
* the paper's Table I run times at the same n, where they exist, as the
  overlay (every published row has one; the beyond-the-wall rows are
  exactly the cells the paper could not print).

Writes ``BENCH_blockwise.json`` at the repository root::

    python benchmarks/bench_blockwise_memory.py            # quick sizes
    python benchmarks/bench_blockwise_memory.py --full     # up to 100,000
"""

from __future__ import annotations

import argparse
import json
import resource
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.bench.paper_data import PAPER_TABLE1
from repro.core.blockwise import cv_scores_blocked, plan_for
from repro.core.grid import BandwidthGrid
from repro.data import paper_dgp
from repro.utils.membudget import parse_byte_budget

QUICK_SIZES = (2_000, 5_000, 20_000)
FULL_SIZES = QUICK_SIZES + (50_000, 100_000)

#: Table I's bandwidth-grid size — keeps the overlay apples-to-apples.
K = 50


def _rss_kib() -> int:
    """Process RSS high-water mark in KiB (Linux ``ru_maxrss`` unit)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def run_one(n: int, budget: str, kernel: str = "epanechnikov") -> dict:
    sample = paper_dgp(n, seed=0)
    grid = BandwidthGrid.for_sample(sample.x, K).values
    plan = plan_for(n, K, kernel, memory_budget=budget)

    tracemalloc.start()
    start = time.perf_counter()
    try:
        scores = cv_scores_blocked(
            sample.x, sample.y, grid, kernel, memory_budget=budget
        )
        seconds = time.perf_counter() - start
        _, traced_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    best = int(np.argmin(scores))
    return {
        "n": n,
        "k": K,
        "kernel": kernel,
        "budget_bytes": parse_byte_budget(budget),
        "block_rows": plan.block_rows,
        "n_blocks": plan.n_blocks,
        "predicted_peak_bytes": plan.predicted_peak_bytes,
        "tracemalloc_peak_bytes": int(traced_peak),
        "peak_within_prediction": bool(
            traced_peak <= 1.5 * plan.predicted_peak_bytes
        ),
        "rss_high_water_kib": _rss_kib(),
        "seconds": round(seconds, 3),
        "h_opt": float(grid[best]),
        "cv_at_h_opt": float(scores[best]),
        # Published Table I seconds at this n (empty beyond the wall —
        # those are the rows the paper's hardware could not produce).
        "paper_table1_seconds": dict(PAPER_TABLE1.get(n, {})),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full", action="store_true",
        help="sweep up to n = 100,000 (several minutes of sorting)",
    )
    parser.add_argument(
        "--budget", default="2GiB",
        help="byte budget for every sweep (default: 2GiB)",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_blockwise.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args()

    sizes = FULL_SIZES if args.full else QUICK_SIZES
    rows = []
    for n in sizes:
        row = run_one(n, args.budget)
        rows.append(row)
        print(
            f"n={n:>7,}  blocks={row['n_blocks']:>5}  "
            f"time={row['seconds']:>8.2f}s  "
            f"tracemalloc_peak={row['tracemalloc_peak_bytes'] / 1024**2:>7.1f} MiB  "
            f"rss_hwm={row['rss_high_water_kib'] / 1024:>7.1f} MiB  "
            f"h_opt={row['h_opt']:.5f}",
            flush=True,
        )

    document = {
        "suite": "blockwise-memory",
        "budget": args.budget,
        "note": (
            "Out-of-core blocked sweep on the paper DGP, k = 50 "
            "(Table I's grid size). rss_high_water_kib is the process "
            "lifetime maximum, so later rows inherit earlier peaks; "
            "tracemalloc_peak_bytes is per-run. The paper's Table I "
            "stops at n = 20,000 (4 GB device OOM); rows beyond it have "
            "no published overlay by construction."
        ),
        "rows": rows,
    }
    Path(args.output).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
