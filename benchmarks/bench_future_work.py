"""EXT2/EXT3 — the paper's future-work fixes, measured.

* **Tiled program (EXT2)** — "eliminating the reliance on storing n-by-n
  matrices": same results, bounded device memory, runs past the
  n = 20,000 wall.  Benchmarked at the headline size against the
  monolithic program; the beyond-the-wall run is asserted (and sized by
  REPRO_BENCH_FULL).
* **Dual GPU (EXT3)** — using both Tesla S10 modules of the paper's
  machine: identical scores, modelled speedup just under 2x.
"""

import numpy as np
import pytest

from _bench_config import FULL, HEADLINE_N, sample_for
from repro.core.grid import BandwidthGrid
from repro.cuda_port import (
    CudaBandwidthProgram,
    MultiGpuBandwidthProgram,
    TiledCudaBandwidthProgram,
    estimate_multi_gpu_runtime,
    estimate_program_runtime,
    estimate_tiled_runtime,
)


@pytest.fixture(scope="module")
def data():
    sample = sample_for(HEADLINE_N)
    return sample, BandwidthGrid.for_sample(sample.x, 50)


def test_ext2_monolithic_program(benchmark, data):
    sample, grid = data
    program = CudaBandwidthProgram(mode="fast")
    result = benchmark.pedantic(
        program.run, args=(sample.x, sample.y, grid.values), rounds=1, iterations=1
    )
    benchmark.extra_info["simulated_tesla_seconds"] = result.simulated_seconds


def test_ext2_tiled_program(benchmark, data):
    sample, grid = data
    program = TiledCudaBandwidthProgram()
    result = benchmark.pedantic(
        program.run, args=(sample.x, sample.y, grid.values), rounds=1, iterations=1
    )
    benchmark.extra_info["tiles"] = result.memory_report["tiles"]
    benchmark.extra_info["simulated_tesla_seconds"] = result.simulated_seconds
    # Scores identical to the monolithic program.
    mono = CudaBandwidthProgram(mode="fast").run(sample.x, sample.y, grid.values)
    np.testing.assert_allclose(result.scores, mono.scores, rtol=1e-6)


def test_ext2_beyond_the_wall(benchmark):
    # The monolithic program cannot run here (4 GB OOM); the tiled one can.
    n = 40_000 if FULL else 22_000
    rng = np.random.default_rng(0)
    x = rng.uniform(size=n)
    y = 0.5 * x + 10 * x * x + rng.uniform(0, 0.5, size=n)
    grid = BandwidthGrid.for_sample(x, 50)

    program = TiledCudaBandwidthProgram()
    result = benchmark.pedantic(
        program.run, args=(x, y, grid.values), rounds=1, iterations=1
    )
    assert result.memory_report["peak_gb"] < 4.0
    benchmark.extra_info["n"] = n
    benchmark.extra_info["simulated_tesla_seconds"] = result.simulated_seconds


def test_ext3_dual_gpu_program(benchmark, data):
    sample, grid = data
    program = MultiGpuBandwidthProgram()
    result = benchmark.pedantic(
        program.run, args=(sample.x, sample.y, grid.values), rounds=1, iterations=1
    )
    single = estimate_program_runtime(HEADLINE_N, 50).total_seconds
    dual = estimate_multi_gpu_runtime(HEADLINE_N, 50).total_seconds
    benchmark.extra_info["modeled_speedup"] = single / dual
    assert 1.5 < single / dual < 2.0


def test_ext3_modeled_scaling_curve(benchmark):
    def curve():
        return {
            d: estimate_multi_gpu_runtime(20_000, 50, n_devices=d).total_seconds
            for d in (1, 2, 4, 8)
        }

    times = benchmark(curve)
    # Diminishing returns (Amdahl), but monotone improvement.
    values = list(times.values())
    assert values == sorted(values, reverse=True)
    benchmark.extra_info["modeled_seconds_by_devices"] = times
