"""MV — multivariate selection: product grid vs coordinate descent.

Not a paper artifact (the paper is univariate) but the direct test of
its §I claim that the method extends to "an evenly-spaced grid or matrix
in multivariate contexts": the exhaustive product grid costs k^d dense
evaluations, while coordinate descent pays d weighted fast sweeps per
cycle — the multivariate payoff of the sorting idea.
"""

import numpy as np
import pytest

from _bench_config import FULL
from repro.multivariate import (
    CoordinateDescentSelector,
    ProductGridSelector,
    mv_cv_score,
)

N = 2000 if FULL else 600


@pytest.fixture(scope="module")
def surface():
    rng = np.random.default_rng(5)
    x = rng.uniform(0, 1, (N, 2))
    y = np.sin(6 * x[:, 0]) + x[:, 1] ** 2 + rng.normal(0, 0.2, N)
    return x, y


def test_mv_product_grid(benchmark, surface):
    x, y = surface
    selector = ProductGridSelector(n_bandwidths=8)
    result = benchmark.pedantic(selector.select, args=(x, y), rounds=1, iterations=1)
    benchmark.extra_info["evaluations"] = result.n_evaluations
    assert result.n_evaluations == 64


def test_mv_coordinate_descent(benchmark, surface):
    x, y = surface
    selector = CoordinateDescentSelector(n_bandwidths=30)
    result = benchmark.pedantic(selector.select, args=(x, y), rounds=1, iterations=1)
    benchmark.extra_info["evaluations"] = result.n_evaluations
    benchmark.extra_info["cycles"] = len(result.trace)

    # Despite the much finer per-dimension grid, CD should be competitive
    # in score with the exhaustive (coarse) product grid.
    pg = ProductGridSelector(n_bandwidths=8).select(x, y)
    assert result.score <= pg.score * 1.10


def test_mv_single_dense_evaluation(benchmark, surface):
    x, y = surface
    value = benchmark(mv_cv_score, x, y, np.array([0.2, 0.2]))
    assert value > 0.0
