"""Host roofline calibration: measured streaming bandwidth vs achieved.

The paper's performance argument is a roofline argument in disguise: the
CUDA program wins not by arithmetic but by memory bandwidth, and its
uncoalesced access pattern caps it at a small fraction of the Tesla's
peak (Section IV).  This benchmark makes the *host* side of that story
measurable.  It ports the classic STREAM copy/scale/add/triad
microbenchmark (the ``memory_bandwidth`` idiom from the reframe test
suite) to numpy:

* ``copy``   b[:] = a            (2 x nbytes moved)
* ``scale``  b[:] = s * a        (2 x nbytes)
* ``add``    c[:] = a + b        (3 x nbytes)
* ``triad``  c[:] = a + s * b    (3 x nbytes)

each timed best-of-``repeats`` (best, not mean: transient interference
only ever *lowers* a bandwidth sample), and records the peak into
``BENCH_roofline.json``.  It then runs a real fast-grid sweep and
reports the *achieved* fraction of that peak, using the membudget
planner's traffic model as the numerator — the same calibrated constant
(:mod:`repro.utils.calibration`) the planner's ``estimate_sweep_seconds``
and the gpusim timing model's host-transfer phases consume, so predicted
and measured figures share one source of truth.

Writes ``BENCH_roofline.json`` at the repository root::

    python benchmarks/bench_roofline.py            # quick (~16 MiB arrays)
    python benchmarks/bench_roofline.py --full     # ~256 MiB arrays
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.bench.paper_data import PAPER_TABLE1
from repro.core.fastgrid import cv_scores_fastgrid
from repro.core.grid import BandwidthGrid
from repro.data import paper_dgp
from repro.utils.calibration import calibration_source
from repro.utils.membudget import plan_blocks

ROOT = Path(__file__).resolve().parent.parent

#: STREAM array size: quick keeps a full run in seconds; --full uses
#: arrays far beyond any cache so the figure is genuinely DRAM-bound.
QUICK_ELEMENTS = 2 * 1024**2  # 16 MiB per float64 array
FULL_ELEMENTS = 32 * 1024**2  # 256 MiB per float64 array

#: Table I's bandwidth-grid size — keeps the sweep overlay apples-to-apples.
K = 50

#: STREAM's byte accounting: arrays touched per kernel iteration.
_STREAM_ARRAYS = {"copy": 2, "scale": 2, "add": 3, "triad": 3}


def measure_streams(elements: int, repeats: int) -> dict[str, float]:
    """Best-of-``repeats`` STREAM rates (bytes/s) for the four kernels."""
    rng = np.random.default_rng(0)
    a = rng.random(elements)
    b = np.empty_like(a)
    c = np.empty_like(a)
    s = 3.0
    kernels = {
        "copy": lambda: np.copyto(b, a),
        "scale": lambda: np.multiply(a, s, out=b),
        "add": lambda: np.add(a, b, out=c),
        "triad": lambda: np.add(a, s * b, out=c),
    }
    rates: dict[str, float] = {}
    for name, kernel in kernels.items():
        nbytes = _STREAM_ARRAYS[name] * a.nbytes
        best = 0.0
        kernel()  # warm the pages before timing
        for _ in range(repeats):
            start = time.perf_counter()
            kernel()
            seconds = time.perf_counter() - start
            best = max(best, nbytes / seconds)
        rates[name] = best
    return rates


def measure_sweep(n: int, kernel: str = "epanechnikov") -> dict:
    """One fast-grid sweep with the planner's traffic model as numerator."""
    sample = paper_dgp(n, seed=0)
    grid = BandwidthGrid.for_sample(sample.x, K).values
    plan = plan_blocks(n, K)
    start = time.perf_counter()
    scores = cv_scores_fastgrid(sample.x, sample.y, grid, kernel)
    seconds = time.perf_counter() - start
    best = int(np.argmin(scores))
    return {
        "n": n,
        "k": K,
        "kernel": kernel,
        "seconds": round(seconds, 4),
        "modelled_traffic_bytes": plan.predicted_traffic_bytes,
        "achieved_bytes_per_second": plan.predicted_traffic_bytes / seconds,
        "h_opt": float(grid[best]),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full", action="store_true",
        help="use ~256 MiB STREAM arrays (DRAM-bound beyond any cache)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="best-of-N samples per STREAM kernel (default: 5)",
    )
    parser.add_argument(
        "--sweep-n", type=int, default=5000,
        help="fast-grid sweep size for the achieved-fraction row",
    )
    parser.add_argument(
        "--output",
        default=str(ROOT / "BENCH_roofline.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args()

    elements = FULL_ELEMENTS if args.full else QUICK_ELEMENTS
    streams = measure_streams(elements, args.repeats)
    peak = max(streams.values())
    for name, rate in streams.items():
        print(f"{name:<6} {rate / 1e9:>8.2f} GB/s", flush=True)
    print(f"peak   {peak / 1e9:>8.2f} GB/s")

    sweep = measure_sweep(args.sweep_n)
    sweep["achieved_fraction_of_peak"] = sweep["achieved_bytes_per_second"] / peak
    print(
        f"sweep n={sweep['n']:,} k={K}: {sweep['seconds']:.2f}s, "
        f"{sweep['achieved_bytes_per_second'] / 1e9:.2f} GB/s modelled "
        f"({100 * sweep['achieved_fraction_of_peak']:.1f}% of peak)"
    )

    document = {
        "suite": "roofline",
        "note": (
            "Host STREAM copy/scale/add/triad bandwidth (best-of-"
            f"{args.repeats}, {elements * 8 // 1024**2} MiB arrays) and the "
            "fast-grid sweep's achieved fraction of the measured peak, "
            "with the membudget planner's traffic model as numerator. "
            "host.peak_bytes_per_second is the figure "
            "repro.utils.calibration serves to the membudget sweep-time "
            "estimate and the gpusim timing model. Table I overlay: "
            "published seconds at the sweep size, for scale; the paper's "
            "hardware (2017 Tesla S1070 host) is not this host."
        ),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "stream_elements": elements,
            "repeats": args.repeats,
            "streams": streams,
            "peak_bytes_per_second": peak,
        },
        "sweep": sweep,
        "calibration": {
            # What the consumers would resolve *after* this artifact lands
            # in the CWD: "roofline" once written, "default" before.
            "source_before_artifact": calibration_source(),
            "peak_bytes_per_second": peak,
        },
        "table1_overlay": {
            "n": args.sweep_n,
            "paper_seconds": dict(PAPER_TABLE1.get(args.sweep_n, {})),
        },
    }
    Path(args.output).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
