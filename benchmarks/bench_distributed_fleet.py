"""Distributed fleet sweep: speedup and recovery overhead vs local.

Two questions the DESIGN.md §13 claims leave open:

* what does sharding the sweep over worker *processes* actually buy
  (or cost) against the single-process ``blocked`` backend at the same
  block partition — staging, JSON framing, and the ordered fold are
  all overhead the paper's in-device reduction does not pay;
* what does *recovery* cost — the same sweep with a seeded fault storm
  (drops, hangs, duplicates, corrupt payloads) relative to a clean run
  on an identical fleet.

Every timed run is checked bit-for-bit against the local reference
before its time is recorded; a distributed "speedup" that changed the
curve would be a bug, not a result.

Writes ``BENCH_distributed.json`` at the repository root::

    python benchmarks/bench_distributed_fleet.py            # quick sizes
    python benchmarks/bench_distributed_fleet.py --full     # larger n
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.blockwise import cv_scores_blocked
from repro.core.grid import BandwidthGrid
from repro.data import paper_dgp
from repro.distributed import (
    ChaosTransport,
    CoordinatorConfig,
    FleetCoordinator,
    InProcessFleet,
    InProcessTransport,
    LocalProcessFleet,
    WorkerApp,
)
from repro.distributed.chaos import seeded_compute_faults
from repro.resilience.policy import RetryPolicy

QUICK_SIZES = (2_000, 5_000)
FULL_SIZES = QUICK_SIZES + (10_000, 20_000)
WORKER_COUNTS = (1, 2, 4)
K = 50
BLOCK_ROWS = 512
CHAOS_SEED = 0


def _config() -> CoordinatorConfig:
    return CoordinatorConfig(
        policy=RetryPolicy(max_retries=3, base_delay=0.0, max_delay=0.0),
        lease_timeout=60.0,
        request_timeout=60.0,
        stage_timeout=60.0,
        heartbeat_interval=5.0,
    )


def _timed_fleet_sweep(fleet, x, y, grid, reference) -> tuple[float, dict]:
    coord = FleetCoordinator(fleet, _config())
    start = time.perf_counter()
    scores = coord.cv_scores(x, y, grid, "epanechnikov", block_rows=BLOCK_ROWS)
    seconds = time.perf_counter() - start
    if not np.array_equal(scores, reference):
        raise AssertionError("distributed sweep diverged from local blocked")
    return seconds, coord.report.to_dict()


def bench_speedup(n: int) -> dict:
    """Local blocked vs HTTP worker fleets at 1/2/4 processes."""
    sample = paper_dgp(n, seed=0)
    grid = BandwidthGrid.for_sample(sample.x, K).values

    start = time.perf_counter()
    reference = cv_scores_blocked(
        sample.x, sample.y, grid, "epanechnikov", block_rows=BLOCK_ROWS
    )
    local_s = time.perf_counter() - start

    fleets = []
    for workers in WORKER_COUNTS:
        fleet = LocalProcessFleet(workers)
        try:
            seconds, report = _timed_fleet_sweep(
                fleet, sample.x, sample.y, grid, reference
            )
        finally:
            fleet.close()
        fleets.append(
            {
                "workers": workers,
                "seconds": seconds,
                "speedup_vs_local": local_s / seconds,
                "blocks_remote": report["blocks_remote"],
                "blocks_total": report["blocks_total"],
            }
        )
    return {
        "n": n,
        "k": K,
        "block_rows": BLOCK_ROWS,
        "local_blocked_seconds": local_s,
        "fleets": fleets,
        "bit_identical": True,
    }


def _chaos_fleet(n_workers: int, *, faulted: bool) -> InProcessFleet:
    transports = []
    for i in range(n_workers):
        worker_id = f"w{i}"
        inner = InProcessTransport(
            WorkerApp(worker_id=worker_id), endpoint=worker_id
        )
        specs = (
            seeded_compute_faults(
                CHAOS_SEED,
                worker_id,
                n_blocks=64,
                kinds=("drop", "hang", "duplicate", "corrupt"),
                rate=0.3,
            )
            if faulted
            else ()
        )
        transports.append(ChaosTransport(inner, specs))
    return InProcessFleet(transports)


def bench_recovery_overhead(n: int) -> dict:
    """Clean vs seeded-fault-storm sweep on identical in-process fleets.

    In-process (not subprocess) so the measured delta is the *recovery
    machinery* — retries, epoch discards, checksum rejects — rather
    than process scheduling noise.
    """
    sample = paper_dgp(n, seed=0)
    grid = BandwidthGrid.for_sample(sample.x, K).values
    reference = cv_scores_blocked(
        sample.x, sample.y, grid, "epanechnikov", block_rows=BLOCK_ROWS
    )

    clean_s, _ = _timed_fleet_sweep(
        _chaos_fleet(3, faulted=False), sample.x, sample.y, grid, reference
    )
    chaos_s, report = _timed_fleet_sweep(
        _chaos_fleet(3, faulted=True), sample.x, sample.y, grid, reference
    )
    return {
        "n": n,
        "k": K,
        "block_rows": BLOCK_ROWS,
        "workers": 3,
        "chaos_seed": CHAOS_SEED,
        "clean_seconds": clean_s,
        "faulted_seconds": chaos_s,
        "recovery_overhead_x": chaos_s / clean_s,
        "retries": report["retries"],
        "duplicates_discarded": report["duplicates_discarded"],
        "checksum_rejects": report["checksum_rejects"],
        "fault_codes": report["fault_codes"],
        "bit_identical": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="sweep the paper-scale sizes"
    )
    parser.add_argument(
        "--output", default="BENCH_distributed.json", help="output path"
    )
    args = parser.parse_args()
    sizes = FULL_SIZES if args.full else QUICK_SIZES

    speedup = []
    for n in sizes:
        row = bench_speedup(n)
        speedup.append(row)
        best = max(row["fleets"], key=lambda f: f["speedup_vs_local"])
        print(
            f"n={n:>6}: local {row['local_blocked_seconds']:.3f}s, best fleet "
            f"{best['workers']}w {best['seconds']:.3f}s "
            f"({best['speedup_vs_local']:.2f}x)"
        )

    recovery = bench_recovery_overhead(sizes[0])
    print(
        f"recovery overhead @ n={recovery['n']}: "
        f"{recovery['recovery_overhead_x']:.2f}x "
        f"({recovery['retries']} retries, "
        f"{recovery['checksum_rejects']} checksum rejects)"
    )

    payload = {
        "benchmark": "distributed_fleet",
        "speedup": speedup,
        "recovery": recovery,
    }
    out = Path(args.output)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
