"""GPUSIM — cost of the simulator substrate itself.

Not a paper artifact: these benches quantify the functional simulator's
interpreter overhead (why the `fast` device-executor mode exists) and
the per-launch cost of the cooperative barrier scheduler and reductions.
Useful as a regression guard when evolving the simulator.
"""

import numpy as np
import pytest

from repro.core.grid import BandwidthGrid
from repro.cuda_port import CudaBandwidthProgram
from repro.data import paper_dgp
from repro.gpusim import device_argmin, device_sum, iterative_quicksort

FUNCTIONAL_N = 128


@pytest.fixture(scope="module")
def small():
    sample = paper_dgp(FUNCTIONAL_N, seed=0)
    return sample, BandwidthGrid.for_sample(sample.x, 10)


def test_functional_program(benchmark, small):
    sample, grid = small
    program = CudaBandwidthProgram(mode="functional")
    result = benchmark.pedantic(
        program.run, args=(sample.x, sample.y, grid.values), rounds=1, iterations=1
    )
    assert result.mode == "functional"


def test_fast_program_same_size(benchmark, small):
    sample, grid = small
    program = CudaBandwidthProgram(mode="fast")
    result = benchmark(program.run, sample.x, sample.y, grid.values)
    assert result.mode == "fast"


def test_device_sum_reduction(benchmark):
    data = np.random.default_rng(0).uniform(size=4096).astype(np.float32)
    total, _ = benchmark(device_sum, data, block_dim=512)
    assert total == pytest.approx(float(data.sum()), rel=1e-3)


def test_device_argmin_reduction(benchmark):
    rng = np.random.default_rng(1)
    scores = rng.uniform(size=2048).astype(np.float32)
    values = np.arange(2048, dtype=np.float32)
    _, val, _ = benchmark(device_argmin, scores, values, block_dim=512)
    assert val == float(scores.argmin())


def test_iterative_quicksort_per_thread_cost(benchmark):
    rng = np.random.default_rng(2)

    def run():
        keys = rng.uniform(size=FUNCTIONAL_N)
        payload = rng.uniform(size=FUNCTIONAL_N)
        iterative_quicksort(keys, payload)
        return keys

    keys = benchmark(run)
    assert (np.diff(keys) >= 0).all()
