"""Bagged subsampled-CV selection: accuracy vs. speed against the exact sweep.

The exact sweep's cost is O(n² log k): at n = 100,000 the blocked
backend needs ~25 minutes (BENCH_blockwise.json).  The bagged selector
answers the same question — which point of the full-sample candidate
grid minimises CV — from r seeded subsamples of size m in O(r·m²·log k),
and this benchmark measures both sides of that trade at each n:

* wall-clock seconds of the bagged selection (default plan, root seed 0)
  and its ``h_opt``;
* the exact blocked sweep's seconds and ``h_opt`` at the same n — taken
  from ``BENCH_blockwise.json`` where a row exists (same DGP, same seed,
  same k = 50 grid) so the full-size sweep is not re-paid here, or
  measured live with ``--live-exact``;
* the derived ``speedup`` and ``rel_error`` columns — the acceptance
  gate is >= 10x at <= 5% relative error at n = 100,000;
* the paper's Table I run times at the same n, where published, as the
  hardware-context overlay.

Writes ``BENCH_bagged.json`` at the repository root::

    python benchmarks/bench_bagged.py            # quick sizes
    python benchmarks/bench_bagged.py --full     # up to n = 100,000
    python benchmarks/bench_bagged.py --full --scale   # plus n = 10^6
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.bench.paper_data import PAPER_TABLE1
from repro.core.api import select_bandwidth
from repro.core.blockwise import cv_scores_blocked
from repro.core.grid import BandwidthGrid
from repro.data import paper_dgp

ROOT = Path(__file__).resolve().parent.parent

QUICK_SIZES = (2_000, 5_000, 20_000)
FULL_SIZES = QUICK_SIZES + (50_000, 100_000)

#: Table I's bandwidth-grid size — keeps every overlay apples-to-apples.
K = 50

ROOT_SEED = 0


def _exact_rows_from_blockwise() -> dict[int, dict]:
    """(n -> {seconds, h_opt}) from the committed blocked-sweep artifact."""
    path = ROOT / "BENCH_blockwise.json"
    if not path.exists():
        return {}
    rows = json.loads(path.read_text(encoding="utf-8"))["rows"]
    return {
        int(row["n"]): {"seconds": row["seconds"], "h_opt": row["h_opt"]}
        for row in rows
        if int(row["k"]) == K
    }


def _exact_live(x: np.ndarray, y: np.ndarray) -> dict:
    grid = BandwidthGrid.for_sample(x, K).values
    start = time.perf_counter()
    scores = cv_scores_blocked(x, y, grid, "epanechnikov")
    seconds = time.perf_counter() - start
    best = int(np.argmin(scores))
    return {"seconds": round(seconds, 3), "h_opt": float(grid[best])}


def run_one(n: int, exact_table: dict[int, dict], *, live_exact: bool) -> dict:
    sample = paper_dgp(n, seed=0)

    start = time.perf_counter()
    result = select_bandwidth(
        sample.x, sample.y, method="bagged", n_bandwidths=K, root_seed=ROOT_SEED
    )
    seconds = time.perf_counter() - start

    exact: dict | None = None
    exact_source = None
    if n in exact_table:
        exact = exact_table[n]
        exact_source = "BENCH_blockwise.json"
    elif live_exact:
        exact = _exact_live(sample.x, sample.y)
        exact_source = "live"

    bag = result.diagnostics["bagged"]
    row = {
        "n": n,
        "k": K,
        "kernel": "epanechnikov",
        "root_seed": ROOT_SEED,
        "subsample_size": bag["subsample_size"],
        "n_subsamples": bag["n_subsamples"],
        "scale_factor": bag["scale_factor"],
        "seconds": round(seconds, 3),
        "h_opt": result.bandwidth,
        "mean_subsample_cv": result.score,
        # Published Table I seconds at this n (empty beyond the paper's
        # n = 20,000 device-memory wall).
        "paper_table1_seconds": dict(PAPER_TABLE1.get(n, {})),
    }
    if exact is not None:
        row["exact_seconds"] = exact["seconds"]
        row["exact_h_opt"] = exact["h_opt"]
        row["exact_source"] = exact_source
        row["speedup"] = round(exact["seconds"] / max(seconds, 1e-9), 1)
        row["rel_error"] = abs(result.bandwidth - exact["h_opt"]) / exact["h_opt"]
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full", action="store_true",
        help="sweep up to n = 100,000 (the headline acceptance row)",
    )
    parser.add_argument(
        "--scale", action="store_true",
        help="append an n = 10^6 row (no exact overlay exists there)",
    )
    parser.add_argument(
        "--live-exact", action="store_true",
        help="measure the exact blocked sweep live when no committed "
        "BENCH_blockwise.json row covers an n (slow at large n)",
    )
    parser.add_argument(
        "--output",
        default=str(ROOT / "BENCH_bagged.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args()

    sizes = FULL_SIZES if args.full else QUICK_SIZES
    if args.scale:
        sizes = sizes + (1_000_000,)
    exact_table = _exact_rows_from_blockwise()

    rows = []
    for n in sizes:
        row = run_one(n, exact_table, live_exact=args.live_exact)
        rows.append(row)
        speed = (
            f"speedup={row['speedup']:>7.1f}x  rel_err={row['rel_error']:.2e}"
            if "speedup" in row
            else "exact: n/a"
        )
        print(
            f"n={n:>9,}  r={row['n_subsamples']:>3}  m={row['subsample_size']:>5}  "
            f"time={row['seconds']:>8.2f}s  h_opt={row['h_opt']:.6f}  {speed}",
            flush=True,
        )

    document = {
        "suite": "bagged-selection",
        "note": (
            "Bagged subsampled-CV selection (arXiv:2105.04134 estimator, "
            "fast sorted grid search inner loop) on the paper DGP, "
            "k = 50 grid, default plan (m ~ min(n^0.7, 5000), r = 20, "
            "root seed 0). Exact columns reuse BENCH_blockwise.json "
            "(same DGP/seed/grid) unless measured --live-exact. "
            "Acceptance: speedup >= 10x and rel_error <= 0.05 at "
            "n = 100,000. h ~ n^(-1/5) grid-matched rescaling means "
            "every subsample votes for an exact full-grid point, so "
            "rel_error measures grid-point agreement, not float drift."
        ),
        "rows": rows,
    }
    Path(args.output).write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
