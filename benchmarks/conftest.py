"""Benchmark-suite fixtures (size policy lives in _bench_config)."""

from __future__ import annotations

import pytest

from _bench_config import HEADLINE_N, sample_for
from repro.core.grid import BandwidthGrid


@pytest.fixture(scope="session")
def headline_sample():
    """Paper-DGP sample at the headline size."""
    return sample_for(HEADLINE_N)


@pytest.fixture(scope="session")
def headline_grid(headline_sample):
    """The paper's k=50 default grid over the headline sample."""
    return BandwidthGrid.for_sample(headline_sample.x, 50)
