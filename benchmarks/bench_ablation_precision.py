"""ABL3 — ablation: the paper's single-precision constraint (§IV-A).

"To reduce the demands for global memory and to ensure compatibility
with relatively early GPUs and NVCC drivers, only single-precision
floating point numbers are used in the computation."

This ablation quantifies what that costs: the float32 fast-grid sweep is
benchmarked against float64 on identical data, and the deviation of the
CV curve and of the selected bandwidth is recorded.  The expected result
— float32 shifts the argmin by at most one grid step at paper sizes — is
asserted, since it justifies the paper's §IV-C cross-checks passing.
"""

import numpy as np
import pytest

from _bench_config import HEADLINE_N, sample_for
from repro.core.fastgrid import cv_scores_fastgrid
from repro.core.grid import BandwidthGrid


@pytest.fixture(scope="module")
def data():
    sample = sample_for(HEADLINE_N)
    return sample, BandwidthGrid.for_sample(sample.x, 50)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_precision_fastgrid(benchmark, data, dtype):
    sample, grid = data
    scores = benchmark(
        cv_scores_fastgrid, sample.x, sample.y, grid.values, dtype=dtype
    )
    assert np.isfinite(scores).all()
    benchmark.extra_info["dtype"] = dtype


def test_precision_agreement(data):
    sample, grid = data
    f64 = cv_scores_fastgrid(sample.x, sample.y, grid.values, dtype="float64")
    f32 = cv_scores_fastgrid(sample.x, sample.y, grid.values, dtype="float32")
    # CV curves agree to float32 relative accuracy...
    np.testing.assert_allclose(f32, f64, rtol=5e-3)
    # ...and the selected bandwidth moves by at most one grid step.
    assert abs(int(np.argmin(f32)) - int(np.argmin(f64))) <= 1
