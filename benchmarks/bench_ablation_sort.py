"""ABL1 — ablation: what each of the paper's two ideas buys.

The paper's §VI attributes the total ~7x to two separable innovations:
the sorted grid search (vs naive per-bandwidth evaluation, and vs
numerical optimisation) and the SPMD parallelisation.  This ablation
measures the first directly at the headline size, k = 50:

* ``fastgrid``      — the sorted prefix-sum sweep, whole grid at once;
* ``dense_grid``    — naive O(k·n²): k independent CV evaluations;
* ``numeric``       — the optimiser's objective: one dense evaluation
  per iterate, dozens of iterates.

Expected shape: fastgrid beats dense_grid by roughly k/constant, and the
optimiser costs a large multiple of a single evaluation.
"""

import numpy as np
import pytest

from _bench_config import HEADLINE_N, sample_for
from repro.core.fastgrid import cv_scores_fastgrid
from repro.core.grid import BandwidthGrid
from repro.core.loocv import cv_score, cv_scores_dense_grid
from repro.core.selectors import NumericalOptimizationSelector


@pytest.fixture(scope="module")
def data():
    sample = sample_for(HEADLINE_N)
    grid = BandwidthGrid.for_sample(sample.x, 50)
    return sample, grid


def test_ablation_fastgrid(benchmark, data):
    sample, grid = data
    scores = benchmark(cv_scores_fastgrid, sample.x, sample.y, grid.values)
    assert np.isfinite(scores).all()


def test_ablation_dense_grid(benchmark, data):
    sample, grid = data
    scores = benchmark.pedantic(
        cv_scores_dense_grid,
        args=(sample.x, sample.y, grid.values),
        rounds=1,
        iterations=1,
    )
    # Sanity: naive and fast must agree — the speedup is free of error.
    fast = cv_scores_fastgrid(sample.x, sample.y, grid.values)
    np.testing.assert_allclose(scores, fast, rtol=1e-9)


def test_ablation_single_dense_evaluation(benchmark, data):
    sample, grid = data
    value = benchmark(cv_score, sample.x, sample.y, float(grid.values[10]))
    assert value > 0.0


def test_ablation_numerical_optimisation(benchmark, data):
    sample, _ = data
    selector = NumericalOptimizationSelector(n_restarts=1, seed=0, maxiter=60)
    result = benchmark.pedantic(
        selector.select, args=(sample.x, sample.y), rounds=1, iterations=1
    )
    benchmark.extra_info["objective_evaluations"] = result.n_evaluations
    assert result.n_evaluations > 10
