"""EXT1 — extension: the fast-grid machinery applied to KDE LSCV.

§II: the least-squares CV methods "can be applied to ... optimal
bandwidth selection for kernel density estimation".  Benchmarks the
sorted-window LSCV sweep against the dense per-bandwidth evaluation and
against the zero-cost rules of thumb.
"""

import numpy as np
import pytest

from _bench_config import HEADLINE_N
from repro.core.grid import BandwidthGrid
from repro.data import bimodal_normal_sample
from repro.kde import (
    lscv_scores_fastgrid,
    lscv_scores_grid,
    silverman_bandwidth,
)

K = 50


@pytest.fixture(scope="module")
def data():
    sample = bimodal_normal_sample(HEADLINE_N, seed=0)
    return sample, BandwidthGrid.for_sample(sample.x, K)


def test_kde_lscv_fastgrid(benchmark, data):
    sample, grid = data
    scores = benchmark(lscv_scores_fastgrid, sample.x, grid.values)
    assert np.isfinite(scores).all()


def test_kde_lscv_dense(benchmark, data):
    sample, grid = data
    scores = benchmark.pedantic(
        lscv_scores_grid, args=(sample.x, grid.values), rounds=1, iterations=1
    )
    fast = lscv_scores_fastgrid(sample.x, grid.values)
    np.testing.assert_allclose(scores, fast, rtol=1e-8)


def test_kde_rule_of_thumb(benchmark, data):
    sample, _ = data
    h = benchmark(silverman_bandwidth, sample.x, "epanechnikov")
    assert h > 0.0
