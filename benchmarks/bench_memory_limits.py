"""MEM — §IV-A / §V: the paper's device-memory behaviour, benchmarked.

* allocation/accounting cost of the §IV-A malloc sequence;
* the 4 GB OOM wall above n = 20,000 (the reason the paper's results
  stop there) — asserted at the exact boundary;
* the constant-memory cap at 2,048 bandwidths.
"""

import numpy as np
import pytest

from repro.cuda_port import CudaBandwidthProgram
from repro.core.grid import BandwidthGrid
from repro.data import paper_dgp
from repro.exceptions import ConstantMemoryError, DeviceMemoryError
from repro.gpusim import GlobalMemory, TESLA_S1070


def _alloc_sequence(n: int, k: int) -> dict:
    """The §IV-A allocation sequence (account-only), then free."""
    gmem = GlobalMemory(TESLA_S1070)
    try:
        gmem.reserve(n, np.float32, label="x")
        gmem.reserve(n, np.float32, label="y")
        gmem.reserve(k, np.float32, label="scores")
        gmem.reserve((n, n), np.float32, label="absdiff")
        gmem.reserve((n, n), np.float32, label="ymat")
        for i in range(4):
            gmem.reserve((n, k), np.float32, label=f"sums{i}")
        gmem.reserve((k, n), np.float32, label="sqresid")
        return gmem.report()
    finally:
        gmem.free_all()


def test_allocation_accounting_speed(benchmark):
    report = benchmark(_alloc_sequence, 20_000, 50)
    assert report["peak_gb"] > 3.0  # two 1.6 GB matrices dominate


def test_paper_ceiling_n20000_fits(benchmark):
    def run():
        report = _alloc_sequence(20_000, 50)
        assert report["peak_gb"] < TESLA_S1070.global_memory_bytes / 1e9
        return report

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_oom_wall_above_20000(benchmark):
    def run():
        with pytest.raises(DeviceMemoryError):
            _alloc_sequence(25_000, 50)
        return True

    assert benchmark.pedantic(run, rounds=1, iterations=1)


def test_constant_memory_cap_2048(benchmark):
    sample = paper_dgp(300, seed=0)
    too_many = BandwidthGrid.evenly_spaced(1e-4, 1.0, 2049)

    def run():
        with pytest.raises(ConstantMemoryError):
            CudaBandwidthProgram(mode="fast").run(
                sample.x, sample.y, too_many.values
            )
        return True

    assert benchmark.pedantic(run, rounds=1, iterations=1)
