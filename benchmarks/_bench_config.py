"""Size policy shared by the benchmark suite.

Default sizes keep a full ``pytest benchmarks/ --benchmark-only`` run in
the minutes range on a laptop.  Set ``REPRO_BENCH_FULL=1`` to sweep the
paper's full sample sizes (up to n = 20,000 - expect a long run: the
paper's own sequential program took 81 s per pass at that size).
"""

from __future__ import annotations

import functools
import os

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

#: Sample sizes benchmarked per program (Figure 1 / Table I sweep).
BENCH_SIZES = (500, 2000, 10000, 20000) if FULL else (500, 2000)

#: The single "headline" size used for cross-program comparisons.
HEADLINE_N = 20000 if FULL else 2000

#: Bandwidth counts for the Table II sweep.
BENCH_BANDWIDTH_COUNTS = (5, 50, 500, 2000) if FULL else (5, 50, 500)


@functools.lru_cache(maxsize=None)
def sample_for(n: int):
    """Deterministic paper-DGP sample of size n (cached per session)."""
    from repro.data import paper_dgp

    return paper_dgp(n, seed=0)
