"""FIG1 — Figure 1: run time of each program versus sample size.

Regenerates the Figure 1 series: one pytest-benchmark entry per
(program, n) cell, on the paper's DGP with the paper's k = 50 grid.
Compare groups with::

    pytest benchmarks/bench_figure1_runtimes.py --benchmark-only \
        --benchmark-group-by=param:n

The cuda-gpu rows time the *host execution* of the simulated program
(its modelled Tesla-S1070 seconds are reported by
``python -m repro fig1`` and checked in tests/cuda_port).
"""

import pytest

from _bench_config import BENCH_SIZES, sample_for
from repro.bench.programs import run_program

PROGRAMS = ("racine-hayfield", "multicore-r", "sequential-c", "cuda-gpu")


@pytest.mark.parametrize("n", BENCH_SIZES)
@pytest.mark.parametrize("program", PROGRAMS)
def test_figure1_cell(benchmark, program, n):
    sample = sample_for(n)
    opts = {}
    if program in ("racine-hayfield", "multicore-r"):
        # Match the bench protocol: modest optimisation budget so the
        # slowest cells stay benchmarkable; relative shape is unaffected.
        opts = {"n_restarts": 2, "maxiter": 60, "seed": 0}

    def run():
        return run_program(program, sample.x, sample.y, k=min(50, n), **opts)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.result.bandwidth > 0.0
    benchmark.extra_info["program"] = program
    benchmark.extra_info["n"] = n
    if result.simulated_seconds is not None:
        benchmark.extra_info["simulated_tesla_seconds"] = result.simulated_seconds
