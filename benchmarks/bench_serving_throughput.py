"""Serving-layer throughput: cold vs warm selection, batched vs unbatched.

Quantifies the two amortisations the serving subsystem adds on top of
the paper's fast sweep:

* **fingerprint cache** — a warm ``select_bandwidth`` is a hash + one
  dict/npz lookup instead of the O(n² log n) sweep; the cold/warm gap
  is the entire selection cost;
* **micro-batching** — ``B`` coalesced ``/predict`` requests cost one
  kernel-matrix pass over the concatenated points instead of ``B``
  separate passes with per-call overhead.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from _bench_config import HEADLINE_N, sample_for
from repro.core.api import select_bandwidth
from repro.regression import NadarayaWatson
from repro.serving import (
    ArtifactCache,
    MicroBatchScheduler,
    SchedulerConfig,
)

K = 50
PREDICT_REQUESTS = 32
POINTS_PER_REQUEST = 8


@pytest.fixture(scope="module")
def data():
    return sample_for(HEADLINE_N)


@pytest.fixture(scope="module")
def warm_cache(data):
    cache = ArtifactCache(None)
    select_bandwidth(data.x, data.y, n_bandwidths=K, cache=cache)
    return cache


def test_selection_cold(benchmark, data):
    """The full sweep, no cache: the cost a warm hit avoids."""
    result = benchmark.pedantic(
        lambda: select_bandwidth(data.x, data.y, n_bandwidths=K),
        rounds=1,
        iterations=1,
    )
    assert result.bandwidth > 0


def test_selection_warm(benchmark, data, warm_cache):
    """Fingerprint hit: hash the inputs, return the stored result."""
    result = benchmark(
        lambda: select_bandwidth(
            data.x, data.y, n_bandwidths=K, cache=warm_cache
        )
    )
    assert result.diagnostics["cache"] == "hit"


@pytest.fixture(scope="module")
def fitted_model(data):
    result = select_bandwidth(data.x, data.y, n_bandwidths=K)
    return NadarayaWatson("epanechnikov", bandwidth=result.bandwidth).fit(
        data.x, data.y
    )


def _request_points(rng: np.random.Generator) -> list[np.ndarray]:
    return [
        rng.uniform(0.0, 1.0, POINTS_PER_REQUEST)
        for _ in range(PREDICT_REQUESTS)
    ]


def test_predict_unbatched(benchmark, fitted_model):
    """One estimator pass per request — the no-coalescing baseline."""
    points = _request_points(np.random.default_rng(5))

    def run() -> int:
        return sum(fitted_model.predict(p).shape[0] for p in points)

    assert benchmark(run) == PREDICT_REQUESTS * POINTS_PER_REQUEST


def test_predict_batched(benchmark, fitted_model):
    """All requests coalesced into one pass, then split (the runner path)."""
    points = _request_points(np.random.default_rng(5))

    def run() -> int:
        merged = np.concatenate(points)
        estimates = fitted_model.predict(merged)
        out = 0
        offset = 0
        for p in points:
            out += estimates[offset : offset + p.shape[0]].shape[0]
            offset += p.shape[0]
        return out

    assert benchmark(run) == PREDICT_REQUESTS * POINTS_PER_REQUEST


def test_scheduler_end_to_end(benchmark, fitted_model):
    """Micro-batcher overhead on top of the batched pass (event loop,

    futures, executor trip) — the price of coalescing transparently.
    """
    points = _request_points(np.random.default_rng(5))

    def runner(batch):
        merged = np.concatenate(list(batch))
        estimates = fitted_model.predict(merged)
        out = []
        offset = 0
        for p in batch:
            out.append(estimates[offset : offset + p.shape[0]])
            offset += p.shape[0]
        return out

    async def serve_once() -> int:
        scheduler = MicroBatchScheduler(
            runner,
            config=SchedulerConfig(
                max_batch_size=PREDICT_REQUESTS, max_wait_ms=5.0
            ),
        )
        scheduler.start()
        results = await asyncio.gather(
            *[scheduler.submit(p) for p in points]
        )
        await scheduler.drain()
        return sum(r.shape[0] for r in results)

    def run() -> int:
        return asyncio.run(serve_once())

    assert benchmark.pedantic(run, rounds=3, iterations=1) == (
        PREDICT_REQUESTS * POINTS_PER_REQUEST
    )
