"""TAB2 — Table II: run times by number of bandwidths calculated.

Panel A (sequential fast grid, measured): one benchmark per bandwidth
count at the headline n — the paper's claim is that the sweep is nearly
flat in k (< 5 % growth from k=5 to k=2,000 at n = 20,000), because the
sort dominates and the grid sweep only adds O(k) work per observation.

Panel B (CUDA program): the simulated Tesla time is a deterministic
model, so it is *asserted* (flat within 10 %) rather than timed, and the
host execution of the simulated program is benchmarked at one k for
reference.
"""

import numpy as np
import pytest

from _bench_config import BENCH_BANDWIDTH_COUNTS, HEADLINE_N, sample_for
from repro.core.fastgrid import cv_scores_fastgrid
from repro.core.grid import BandwidthGrid
from repro.cuda_port import CudaBandwidthProgram, estimate_program_runtime


@pytest.mark.parametrize("k", BENCH_BANDWIDTH_COUNTS)
def test_table2_panel_a_sequential(benchmark, k):
    sample = sample_for(HEADLINE_N)
    grid = BandwidthGrid.for_sample(sample.x, k)

    scores = benchmark(cv_scores_fastgrid, sample.x, sample.y, grid.values)
    assert np.isfinite(scores).all()
    benchmark.extra_info["n"] = HEADLINE_N
    benchmark.extra_info["k"] = k


@pytest.mark.parametrize("k", BENCH_BANDWIDTH_COUNTS)
def test_table2_panel_b_cuda(benchmark, k):
    sample = sample_for(HEADLINE_N)
    grid = BandwidthGrid.for_sample(sample.x, k)
    program = CudaBandwidthProgram(mode="fast")

    result = benchmark.pedantic(
        program.run, args=(sample.x, sample.y, grid.values), rounds=1, iterations=1
    )
    benchmark.extra_info["k"] = k
    benchmark.extra_info["simulated_tesla_seconds"] = result.simulated_seconds

    # The Table II panel B claim, on the modelled Tesla time: near-flat
    # in k ("we do not observe appreciable slowdowns").
    t_small = estimate_program_runtime(HEADLINE_N, BENCH_BANDWIDTH_COUNTS[0])
    t_here = estimate_program_runtime(HEADLINE_N, k)
    assert (
        t_here.total_seconds < 1.15 * t_small.total_seconds
    ), "simulated CUDA time must stay nearly flat in k"
