"""ABL2 — ablation: kernel choice and the sorted-grid eligibility rule.

Paper footnote 1: the sorting strategy covers the Epanechnikov, Uniform
and Triangular kernels (and, as generalised here, every compact
polynomial kernel); the Gaussian has no indicator function, needs no
sort, and runs dense.  This bench measures the cost of the fast sweep
per polynomial kernel (more polynomial terms => more window sums) and
the dense fallback the Gaussian is forced into.
"""

import numpy as np
import pytest

from _bench_config import HEADLINE_N, sample_for
from repro.core.fastgrid import cv_scores_fastgrid
from repro.core.grid import BandwidthGrid
from repro.core.loocv import cv_scores_dense_grid
from repro.kernels import fast_grid_kernels, get_kernel

K = 50


@pytest.fixture(scope="module")
def data():
    sample = sample_for(HEADLINE_N)
    return sample, BandwidthGrid.for_sample(sample.x, K)


@pytest.mark.parametrize("kernel", sorted(fast_grid_kernels()))
def test_fastgrid_by_kernel(benchmark, data, kernel):
    sample, grid = data
    scores = benchmark(
        cv_scores_fastgrid, sample.x, sample.y, grid.values, kernel
    )
    assert np.isfinite(scores).all()
    benchmark.extra_info["poly_terms"] = len(get_kernel(kernel).poly_terms)


def test_gaussian_dense_fallback(benchmark, data):
    sample, grid = data
    scores = benchmark.pedantic(
        cv_scores_dense_grid,
        args=(sample.x, sample.y, grid.values, "gaussian"),
        rounds=1,
        iterations=1,
    )
    assert np.isfinite(scores).all()


def test_kernel_choice_barely_moves_the_optimum(data):
    # The classic "kernel choice doesn't matter much" result: CV optima
    # across polynomial kernels agree within a small factor once
    # canonical-bandwidth scaling is accounted for.
    sample, grid = data
    optima = {}
    for kernel in sorted(fast_grid_kernels()):
        scores = cv_scores_fastgrid(sample.x, sample.y, grid.values, kernel)
        kern = get_kernel(kernel)
        optima[kernel] = (
            float(grid.values[int(np.argmin(scores))]) / kern.canonical_bandwidth
        )
    values = np.array(list(optima.values()))
    assert values.max() / values.min() < 3.0
