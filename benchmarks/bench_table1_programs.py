"""TAB1 — Table I: run times by program and sample size.

One benchmark per program at the headline size (all four on identical
data and grid, so the group directly reproduces a Table I row), plus the
rule-of-thumb baseline from the paper's introduction.  Group with::

    pytest benchmarks/bench_table1_programs.py --benchmark-only \
        --benchmark-group-by=func

The modelled paper-machine row (232.5 / 124.7 / 80.9 / 32.5 s at
n = 20,000) is attached as extra_info for the report.
"""

import pytest

from _bench_config import HEADLINE_N, sample_for
from repro.bench.machine_model import MODELED_PROGRAMS, model_program
from repro.bench.programs import run_program


def _bench_program(benchmark, program, **opts):
    sample = sample_for(HEADLINE_N)
    k = min(50, HEADLINE_N)

    def run():
        return run_program(program, sample.x, sample.y, k=k, **opts)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["n"] = HEADLINE_N
    if program in MODELED_PROGRAMS:
        benchmark.extra_info["modeled_paper_machine_seconds"] = model_program(
            program, HEADLINE_N, k
        )
    return result


def test_table1_racine_hayfield(benchmark):
    run = _bench_program(
        benchmark, "racine-hayfield", n_restarts=2, maxiter=60, seed=0
    )
    assert run.result.n_evaluations > 20


def test_table1_multicore_r(benchmark):
    run = _bench_program(
        benchmark, "multicore-r", n_restarts=2, maxiter=60, seed=0
    )
    assert run.result.backend == "multicore"


def test_table1_sequential_c(benchmark):
    run = _bench_program(benchmark, "sequential-c")
    assert run.result.n_evaluations == min(50, HEADLINE_N)


def test_table1_cuda_gpu(benchmark):
    run = _bench_program(benchmark, "cuda-gpu")
    assert run.simulated_seconds is not None


def test_table1_rule_of_thumb(benchmark):
    run = _bench_program(benchmark, "rule-of-thumb")
    assert run.result.method == "rule-of-thumb"
